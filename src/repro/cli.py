"""Command-line interface: ``python -m repro <command>``.

Commands cover the full paper workflow:

* ``survey``      — print the user-survey headline numbers (Figs. 2-8);
* ``generate``    — synthesise a calibrated corpus to a file;
* ``stats``       — Tables VIII-X statistics for a corpus file;
* ``train``       — train any registered trainable meter and save it;
* ``measure``     — measure passwords with a saved model;
* ``meters``      — list registered meters and their capabilities;
* ``guess``       — emit a model's top guesses (cracking mode);
* ``scenarios``   — list the Table-XI experiment matrix;
* ``experiment``  — run one scenario and print its Fig.-13 curves;
* ``coach``       — suggest stronger variants of a weak password;
* ``attack``      — the unified attack engine: ``enumerate`` (guess
  streams at scale), ``masks`` (compiled hashcat-style masks/rules),
  ``simulate`` (Table I's online/offline attackers), ``crossover``
  (online vs mask-extrapolated offline meter comparison);
* ``profile``     — partial-guessing profile of a corpus file, or
  (with ``--base/--train/--stream``) a telemetry profile of the full
  train-and-score pipeline;
* ``serve``       — serve a saved model over HTTP (``/check``,
  ``/suggest``, ``/policy``, ``/accept``, ``/healthz``,
  ``/metrics``); see DESIGN.md §14.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any, List, Optional, Sequence, Tuple

from repro.datasets.loaders import (
    load_corpus,
    save_corpus,
    stream_corpus_chunks,
)
from repro.datasets.profiles import DATASET_ORDER
from repro.datasets.stats import (
    composition_table,
    length_table,
    summary_row,
    top_k_table,
)
from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.reporting import (
    format_curves,
    format_percent,
    format_ranking,
    format_table,
)
from repro.experiments.runner import ExperimentConfig, run_scenario
from repro.experiments.scenarios import ALL_SCENARIOS, scenario
from repro.meters import registry
from repro.meters.base import probability_to_entropy
from repro.meters.markov import Smoothing
from repro.meters.registry import Capability, TrainContext
from repro.persistence import load_meter, save_meter
from repro.serve import ReproServer, ServeConfig, SnapshotRegistry
from repro.survey.analysis import survey_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="fuzzyPSM (DSN 2016) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("survey", help="print survey headline numbers")

    generate = commands.add_parser(
        "generate", help="synthesise a calibrated corpus"
    )
    generate.add_argument("dataset", choices=list(DATASET_ORDER))
    generate.add_argument("--total", type=int, default=20_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", "-o", required=True)
    generate.add_argument(
        "--format", choices=("plain", "counted"), default="counted"
    )

    stats = commands.add_parser(
        "stats", help="corpus statistics (Tables VIII-X)"
    )
    stats.add_argument("corpus", help="corpus file (plain or counted)")
    stats.add_argument("--top", type=int, default=10)

    train = commands.add_parser("train", help="train and save a meter")
    train.add_argument("--training", required=True,
                       help="training corpus file")
    train.add_argument("--base",
                       help="base dictionary corpus file (fuzzyPSM only)")
    # Any registered trainable + persistable meter is a --kind choice:
    # registering a new meter makes it trainable here with no CLI edit.
    train.add_argument(
        "--kind",
        choices=registry.kinds_with(
            Capability.TRAINABLE, Capability.PERSISTABLE
        ),
        default="fuzzypsm",
    )
    train.add_argument("--order", type=int, default=3,
                       help="Markov order")
    train.add_argument(
        "--smoothing", default="backoff",
        choices=[s.value for s in Smoothing],
    )
    train.add_argument(
        "--allow-reverse", action="store_true",
        help="enable the reverse rule (paper future work; fuzzyPSM)",
    )
    train.add_argument(
        "--allow-allcaps", action="store_true",
        help="enable whole-word capitalization (fuzzyPSM)",
    )
    train.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse the training corpus across N worker processes; "
             "count tables are merged exactly (fuzzyPSM)",
    )
    train.add_argument(
        "--no-compile", action="store_true",
        help="walk the pointer trie instead of the compiled "
             "flat-array trie (fuzzyPSM escape hatch)",
    )
    train.add_argument(
        "--parse-cache-size", type=int, default=None, metavar="N",
        help="capacity of the LRU parse cache used for bulk scoring "
             "(fuzzyPSM; default 65536)",
    )
    train.add_argument(
        "--stream-chunk", type=int, default=None, metavar="N",
        help="stream the training corpus off disk in chunks of N "
             "entries instead of loading it into memory (stream-"
             "trainable kinds; combine with --jobs for the parallel "
             "delta pool)",
    )
    train.add_argument(
        "--model-format", choices=["json", "binary"], default="json",
        help="on-disk model format: json (portable envelope) or "
             "binary (array-backed, mmap-fast loads; binary-"
             "persistable kinds)",
    )
    train.add_argument("--output", "-o", required=True)

    measure = commands.add_parser(
        "measure", help="measure passwords with a saved model"
    )
    measure.add_argument("--model", required=True)
    measure.add_argument(
        "--score-jobs", type=int, default=None, metavar="N",
        help="score across N worker processes (parallel-scorable "
             "meters; results are identical to serial scoring)",
    )
    measure.add_argument("passwords", nargs="*",
                         help="passwords (stdin lines when omitted)")

    guess = commands.add_parser(
        "guess", help="emit a model's top guesses"
    )
    guess.add_argument("--model", required=True)
    guess.add_argument("--count", "-n", type=int, default=100)

    meters = commands.add_parser(
        "meters", help="list registered meters and their capabilities"
    )
    meters.add_argument(
        "--format", dest="output_format",
        choices=("text", "json"), default="text",
    )

    commands.add_parser("scenarios", help="list the Table-XI matrix")

    experiment = commands.add_parser(
        "experiment", help="run one Table-XI scenario"
    )
    experiment.add_argument(
        "scenario", help="scenario name, e.g. ideal-csdn"
    )
    experiment.add_argument("--corpus-size", type=int, default=20_000)
    experiment.add_argument("--base-corpus-size", type=int,
                            default=120_000)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--min-frequency", type=int, default=4)
    experiment.add_argument(
        "--score-jobs", type=int, default=None, metavar="N",
        help="bulk-score across N worker processes for meters with "
             "the parallel-scorable capability",
    )
    experiment.add_argument(
        "--seeds",
        help="comma-separated seeds for a robustness sweep "
             "(overrides --seed; prints mean rank +/- std per meter)",
    )

    coach = commands.add_parser(
        "coach", help="suggest stronger variants of weak passwords"
    )
    coach.add_argument("--model", required=True,
                       help="trained meter (from `repro train`)")
    coach.add_argument("--target-bits", type=float, default=20.0)
    coach.add_argument("--max-suggestions", type=int, default=3)
    coach.add_argument("passwords", nargs="+")

    attack = commands.add_parser(
        "attack",
        help="the unified attack engine: enumerate guesses, compile "
             "masks, simulate attackers, compare meters at scale",
    )
    attack_commands = attack.add_subparsers(
        dest="attack_command", required=True
    )

    attack_enumerate = attack_commands.add_parser(
        "enumerate",
        help="emit a model's descending guess stream (engine-backed)",
    )
    attack_enumerate.add_argument(
        "--model", required=True, help="trained meter file"
    )
    attack_enumerate.add_argument("--count", "-n", type=int,
                                  default=1_000)
    attack_enumerate.add_argument(
        "--beam-width", type=int, default=None, metavar="N",
        help="bound the expansion frontier to the N most probable "
             "nodes (lossy; dropped mass is tracked)",
    )
    attack_enumerate.add_argument(
        "--beam-floor", type=float, default=0.0, metavar="P",
        help="prune candidates below probability P (exact above the "
             "floor)",
    )
    attack_enumerate.add_argument(
        "--stats", action="store_true",
        help="print enumeration statistics to stderr",
    )

    attack_masks = attack_commands.add_parser(
        "masks",
        help="compile hashcat-style masks and rules from a model",
    )
    attack_masks.add_argument(
        "--model", required=True, help="trained meter file"
    )
    attack_masks.add_argument(
        "--source-guesses", type=int, default=20_000, metavar="N",
        help="guesses enumerated to feed mask aggregation",
    )
    attack_masks.add_argument(
        "--policy", choices=("efficiency", "mass", "keyspace"),
        default="efficiency", help="mask ranking policy",
    )
    attack_masks.add_argument(
        "--max-masks", type=int, default=None, metavar="N",
        help="keep only the N best masks",
    )
    attack_masks.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="masks printed to stdout",
    )
    attack_masks.add_argument(
        "--output", "-o",
        help="save the compiled mask set (JSON envelope)",
    )
    attack_masks.add_argument(
        "--export", metavar="DIR",
        help="also write hashcat-consumable .hcmask/.rule files "
        "into DIR",
    )

    attack_simulate = attack_commands.add_parser(
        "simulate", help="simulate Table I's trawling attackers"
    )
    attack_simulate.add_argument(
        "--model", required=True,
        help="trained meter used as the guess stream",
    )
    attack_simulate.add_argument(
        "--victims", required=True,
        help="corpus file of victim accounts",
    )
    attack_simulate.add_argument(
        "--lockout", type=int, default=100,
        help="online attempts allowed per account",
    )
    attack_simulate.add_argument(
        "--hash", dest="hash_name", default="sha256",
        choices=("plaintext", "md5", "sha256", "bcrypt", "scrypt"),
    )
    attack_simulate.add_argument("--hours", type=float, default=24.0)
    attack_simulate.add_argument(
        "--max-guesses", type=int, default=200_000,
        help="offline simulation horizon cap",
    )

    attack_crossover = attack_commands.add_parser(
        "crossover",
        help="online (materialized) vs offline (mask-extrapolated) "
             "crossover between two meters",
    )
    attack_crossover.add_argument(
        "--model", required=True, help="primary trained meter file"
    )
    attack_crossover.add_argument(
        "--baseline", required=True,
        help="baseline trained meter file to compare against",
    )
    attack_crossover.add_argument(
        "--victims", required=True,
        help="corpus file of victim accounts",
    )
    attack_crossover.add_argument(
        "--online-budget", type=int, default=10**4,
        help="materialized horizon (paper Table I: < 10^4)",
    )
    attack_crossover.add_argument(
        "--offline-budget", type=int, default=10**10,
        help="mask-extrapolated horizon (> 10^9)",
    )
    attack_crossover.add_argument(
        "--enumerate-limit", type=int, default=None, metavar="N",
        help="guesses materialized per meter (default: online budget)",
    )
    attack_crossover.add_argument(
        "--policy", choices=("efficiency", "mass", "keyspace"),
        default="efficiency",
        help="mask ranking policy for the offline extrapolation",
    )

    profile = commands.add_parser(
        "profile",
        help="partial-guessing profile of a corpus, or (--base/--train/"
             "--stream) pipeline telemetry",
    )
    profile.add_argument("corpus", nargs="?",
                         help="corpus file (plain or counted)")
    profile.add_argument("--online-budget", type=int, default=1_000)
    profile.add_argument(
        "--base", help="base dictionary corpus (telemetry mode)"
    )
    profile.add_argument(
        "--train", dest="train_corpus",
        help="training corpus (telemetry mode)",
    )
    profile.add_argument(
        "--stream",
        help="corpus scored as the measuring workload (telemetry mode)",
    )
    profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="score the stream N times (exercises the parse cache)",
    )
    profile.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the training stage",
    )
    profile.add_argument(
        "--score-jobs", type=int, default=None, metavar="N",
        help="worker processes for the scoring stage",
    )
    profile.add_argument(
        "--parse-cache-size", type=int, default=None, metavar="N",
        help="capacity of the LRU parse cache (telemetry mode)",
    )
    profile.add_argument(
        "--format", dest="output_format",
        choices=("json", "text"), default="json",
    )
    profile.add_argument(
        "--output", "-o",
        help="also write the JSON report to this file",
    )

    serve = commands.add_parser(
        "serve",
        help="serve a saved model over HTTP (check/suggest/policy)",
    )
    serve.add_argument(
        "--model", required=True, action="append", dest="models",
        metavar="[NAME=]PATH",
        help="saved model file (repro train output); repeatable — "
        "NAME=PATH serves several models routed by the model= request "
        "parameter (the first one is the default route)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8042,
                       help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="warm scoring worker processes (0 = score in-process)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.0, metavar="SECS",
        help="micro-batch coalescing window for /check "
        "(0 = self-clocking: batch whatever arrives mid-dispatch)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=256, metavar="N",
        help="most /check requests folded into one scoring call",
    )
    serve.add_argument(
        "--max-body", type=int, default=64 * 1024, metavar="BYTES",
        help="request body size cap (413 beyond it)",
    )

    lint = commands.add_parser(
        "lint", help="run the domain-invariant static analyser"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", dest="output_format",
        choices=("text", "json", "sarif", "markdown"), default="text",
        help="violation reporter; 'sarif' emits SARIF 2.1.0 for CI "
        "code scanning, 'markdown' is only valid with --list-rules",
    )
    lint.add_argument(
        "--select", help="comma-separated rule ids, e.g. FPM001,FPM006"
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the mechanical autofixes (FPM007 mutable "
        "defaults, FPM008 unambiguous -> None) before reporting",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files across N processes (0 = CPU count)",
    )
    lint.add_argument(
        "--cache", dest="cache_path", default=None, metavar="PATH",
        help="incremental cache file (warm runs skip unchanged "
        "files); see also --no-cache",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="force a cold run even when --cache is given",
    )

    return parser


# --- command handlers -------------------------------------------------------


def _cmd_survey(_args: argparse.Namespace) -> int:
    for line in survey_report():
        print(line)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    ecosystem = SyntheticEcosystem(seed=args.seed)
    corpus = ecosystem.generate(args.dataset, total=args.total,
                                seed=args.seed)
    save_corpus(corpus, args.output, fmt=args.format)
    print(
        f"wrote {corpus.total} entries ({corpus.unique} unique) "
        f"to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    corpus = load_corpus(args.corpus)
    row = summary_row(corpus)
    print(f"dataset: {row['dataset']}  unique: {row['unique']}  "
          f"total: {row['total']}")
    table, share = top_k_table(corpus, k=args.top)
    print()
    print(format_table(
        ["rank", "password", "count"],
        [[rank, pw, count]
         for rank, (pw, count) in enumerate(table, start=1)],
        title=f"Top-{args.top} passwords "
              f"(covering {format_percent(share)})",
    ))
    print()
    print(format_table(
        ["class", "fraction"],
        [[name, format_percent(value)]
         for name, value in composition_table(corpus).items()],
        title="Character composition (Table IX classes)",
    ))
    print()
    print(format_table(
        ["length", "fraction"],
        [[bucket, format_percent(value)]
         for bucket, value in length_table(corpus).items()],
        title="Length distribution (Table X buckets)",
    ))
    return 0


def _fuzzy_config(args: argparse.Namespace):
    """The :class:`FuzzyPSMConfig` assembled from CLI tunables."""
    from repro.core.meter import FuzzyPSMConfig
    fuzzy_options = {
        "allow_reverse": args.allow_reverse,
        "allow_allcaps": args.allow_allcaps,
        "use_compiled_trie": not args.no_compile,
    }
    if args.parse_cache_size is not None:
        fuzzy_options["parse_cache_size"] = args.parse_cache_size
    return FuzzyPSMConfig(**fuzzy_options)


def _train_context(args: argparse.Namespace,
                   training_items: Sequence,
                   base_dictionary: Sequence[str]) -> TrainContext:
    """The registry context carrying every CLI training tunable.

    Each registered builder picks the options relevant to its family
    and ignores the rest, so one context trains any ``--kind``.
    """
    return TrainContext(
        training=tuple(training_items),
        base_dictionary=tuple(base_dictionary),
        options={
            "markov_order": args.order,
            "markov_smoothing": Smoothing(args.smoothing),
            "jobs": args.jobs,
            "fuzzy_config": _fuzzy_config(args),
        },
    )


def _cmd_train(args: argparse.Namespace) -> int:
    spec = registry.get_spec(args.kind)
    if spec.requires_base_dictionary and not args.base:
        print(f"error: --base is required for {spec.display_name}",
              file=sys.stderr)
        return 2
    if (
        args.model_format == "binary"
        and not spec.has(Capability.BINARY_PERSISTABLE)
    ):
        kinds = ", ".join(
            registry.kinds_with(Capability.BINARY_PERSISTABLE)
        )
        print(f"error: --model-format binary is not supported by "
              f"{spec.display_name}; binary-persistable kinds: {kinds}",
              file=sys.stderr)
        return 2
    if args.stream_chunk is not None:
        if not spec.has(Capability.STREAM_TRAINABLE):
            kinds = ", ".join(
                registry.kinds_with(Capability.STREAM_TRAINABLE)
            )
            print(f"error: --stream-chunk is not supported by "
                  f"{spec.display_name}; stream-trainable kinds: "
                  f"{kinds}", file=sys.stderr)
            return 2
        if args.stream_chunk <= 0:
            print("error: --stream-chunk must be positive",
                  file=sys.stderr)
            return 2
        return _train_streaming(args, spec)
    training = load_corpus(args.training)
    base_dictionary: Sequence[str] = ()
    if args.base:
        base_dictionary = load_corpus(args.base).unique_passwords()
    meter = registry.build_meter(
        args.kind,
        _train_context(args, list(training.items()), base_dictionary),
    )
    save_meter(meter, args.output, fmt=args.model_format)
    print(f"trained {meter.name} on {training.total} passwords "
          f"-> {args.output}")
    return 0


def _train_streaming(args: argparse.Namespace, spec) -> int:
    """The out-of-core training path behind ``--stream-chunk``.

    The corpus is never materialised: chunks stream straight off disk
    into the trainer (serial, or the parallel delta pool with
    ``--jobs``), so peak memory is bounded by the chunk size and the
    trainer's in-flight window.
    """
    base_dictionary: Sequence[str] = ()
    if args.base:
        base_dictionary = load_corpus(args.base).unique_passwords()
    trained = 0

    def counted_chunks():
        nonlocal trained
        for chunk in stream_corpus_chunks(
            args.training, chunk_size=args.stream_chunk
        ):
            trained += len(chunk)
            yield chunk

    meter = spec.cls.train_streaming(
        base_dictionary,
        counted_chunks(),
        config=_fuzzy_config(args),
        jobs=args.jobs,
    )
    save_meter(meter, args.output, fmt=args.model_format)
    print(f"trained {meter.name} on {trained} streamed passwords "
          f"-> {args.output}")
    return 0


def _score_stream(meter, passwords: Sequence[str],
                  score_jobs: Optional[int]) -> List[float]:
    """Bulk-score via the registry capability, never a concrete type.

    ``--score-jobs`` only reaches meters whose spec declares the
    parallel-scorable capability; everything else scores serially —
    the flag degrades gracefully instead of erroring on, say, a saved
    Markov model.
    """
    spec = registry.spec_for(meter)
    if (
        score_jobs is not None
        and spec is not None
        and spec.has(Capability.PARALLEL_SCORABLE)
    ):
        return meter.probability_many(passwords, jobs=score_jobs)
    return meter.probability_many(passwords)


def _cmd_measure(args: argparse.Namespace) -> int:
    meter = load_meter(args.model)
    passwords: Sequence[str] = args.passwords or [
        line.rstrip("\n") for line in sys.stdin if line.strip()
    ]
    # One batched pass: meters with vectorised overrides (fuzzyPSM's
    # parse cache, the PCFG/Markov memos) score repeats only once.
    probabilities = _score_stream(meter, passwords, args.score_jobs)
    print(format_table(
        ["password", "probability", "entropy(bits)"],
        [
            [pw, f"{probability:.3e}",
             f"{probability_to_entropy(probability):.2f}"]
            for pw, probability in zip(passwords, probabilities)
        ],
    ))
    return 0


def _cmd_meters(args: argparse.Namespace) -> int:
    specs = registry.all_specs()
    if args.output_format == "json":
        print(json.dumps(
            {
                kind: {
                    "display_name": spec.display_name,
                    "capabilities": spec.capability_names(),
                    "requires_base_dictionary":
                        spec.requires_base_dictionary,
                    "summary": spec.summary,
                }
                for kind, spec in specs.items()
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(format_table(
        ["kind", "name", "capabilities", "summary"],
        [
            [kind, spec.display_name,
             ", ".join(spec.capability_names()), spec.summary]
            for kind, spec in specs.items()
        ],
        title="registered meters",
    ))
    return 0


def _cmd_guess(args: argparse.Namespace) -> int:
    meter = load_meter(args.model)
    for rank, (guess, probability) in enumerate(
        meter.iter_guesses(limit=args.count), start=1
    ):
        print(f"{rank}\t{probability:.3e}\t{guess}")
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    print(format_table(
        ["name", "figure", "kind", "base", "train", "test"],
        [
            [s.name, s.figure, s.kind, s.base_dataset,
             s.train_dataset or "-", s.test_dataset]
            for s in ALL_SCENARIOS
        ],
        title="Table XI -- training and testing scenarios",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        corpus_size=args.corpus_size,
        base_corpus_size=args.base_corpus_size,
        seed=args.seed,
        score_jobs=args.score_jobs,
    )
    chosen = scenario(args.scenario)
    if args.seeds:
        from repro.experiments.robustness import (
            run_scenario_across_seeds,
        )
        try:
            seeds = [int(part) for part in args.seeds.split(",") if part]
        except ValueError:
            print("error: --seeds expects comma-separated integers",
                  file=sys.stderr)
            return 2
        result = run_scenario_across_seeds(
            chosen, seeds=seeds, config=config,
            min_frequency=args.min_frequency,
        )
        print(format_table(
            ["meter", "mean rank +/- std", "mean tau", "wins"],
            result.rows(),
            title=f"{chosen.name} across seeds {seeds}",
        ))
        return 0
    result = run_scenario(
        chosen, config=config, min_frequency=args.min_frequency,
    )
    print(format_curves(result))
    print()
    print("ranking:", format_ranking(result))
    return 0


def _cmd_coach(args: argparse.Namespace) -> int:
    from repro.core.suggestions import (
        improvement_report,
        suggest_stronger,
    )
    meter = load_meter(args.model)
    for password in args.passwords:
        if meter.entropy(password) >= args.target_bits:
            print(f"{password!r}: already at or above "
                  f"{args.target_bits:.0f} bits")
            continue
        suggestions = suggest_stronger(
            meter, password, target_bits=args.target_bits,
            max_suggestions=args.max_suggestions,
        )
        for line in improvement_report(meter, password, suggestions):
            print(line)
        print()
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    handlers = {
        "enumerate": _cmd_attack_enumerate,
        "masks": _cmd_attack_masks,
        "simulate": _cmd_attack_simulate,
        "crossover": _cmd_attack_crossover,
    }
    return handlers[args.attack_command](args)


def _cmd_attack_enumerate(args: argparse.Namespace) -> int:
    from repro.attacks import Beam, guess_stream_for
    meter = load_meter(args.model)
    beam = None
    if args.beam_width is not None or args.beam_floor:
        beam = Beam(width=args.beam_width, floor=args.beam_floor)
    stream = guess_stream_for(meter, limit=args.count, beam=beam)
    for rank, (guess, probability) in enumerate(stream, start=1):
        print(f"{rank}\t{probability:.3e}\t{guess}")
    stats = stream.stats
    if args.stats and stats is not None:
        print(
            f"pops={stats.pops} pushes={stats.pushes} "
            f"yielded={stats.yielded} "
            f"floor_dropped={stats.floor_dropped} "
            f"width_dropped={stats.width_dropped} "
            f"dropped_mass={stats.dropped_mass:.3e}",
            file=sys.stderr,
        )
    return 0


def _cmd_attack_masks(args: argparse.Namespace) -> int:
    from repro.attacks import compile_mask_set, compile_rules
    from repro.attacks import export_hashcat, guess_stream_for
    from repro.persistence import save_mask_set
    meter = load_meter(args.model)
    rules = ()
    frozen_grammar = getattr(meter, "frozen_grammar", None)
    if frozen_grammar is not None:
        rules = compile_rules(frozen_grammar())
    mask_set = compile_mask_set(
        guess_stream_for(meter, limit=args.source_guesses),
        policy=args.policy,
        max_masks=args.max_masks,
        rules=rules,
        source=meter.name,
    )
    print(format_table(
        ["rank", "mask", "keyspace", "mass", "efficiency"],
        [
            [rank, entry.mask, f"{entry.keyspace:,}",
             f"{entry.probability:.3e}", f"{entry.efficiency:.3e}"]
            for rank, entry in enumerate(
                mask_set.entries[:args.top], start=1
            )
        ],
        title=f"top masks ({mask_set.policy} policy, "
              f"{mask_set.source_guesses:,} source guesses)",
    ))
    if mask_set.rules:
        print()
        print(format_table(
            ["rule", "probability", "description"],
            [
                [rule.rule, f"{rule.probability:.3e}", rule.description]
                for rule in mask_set.rules
            ],
            title="substitution rules",
        ))
    if args.output:
        save_mask_set(mask_set, args.output)
        print(f"\nmask set ({len(mask_set.entries)} masks) "
              f"-> {args.output}")
    if args.export:
        written = export_hashcat(mask_set, args.export)
        for kind in sorted(written):
            print(f"hashcat {kind} -> {written[kind]}")
    return 0


def _cmd_attack_simulate(args: argparse.Namespace) -> int:
    from repro.attacks import (
        HASH_PROFILES,
        LockoutPolicy,
        OfflineAttack,
        OnlineAttack,
        guess_stream_for,
    )
    meter = load_meter(args.model)
    victims = load_corpus(args.victims)
    online = OnlineAttack(
        LockoutPolicy(attempts_per_window=args.lockout)
    ).run(guess_stream_for(meter), victims)
    offline = OfflineAttack(
        HASH_PROFILES[args.hash_name],
        seconds=args.hours * 3600.0,
        max_stream_guesses=args.max_guesses,
    ).run(guess_stream_for(meter), victims)
    print(online.summary())
    print(offline.summary())
    return 0


def _cmd_attack_crossover(args: argparse.Namespace) -> int:
    from repro.attacks import crossover_report, guess_stream_for
    meter = load_meter(args.model)
    baseline = load_meter(args.baseline)
    victims = load_corpus(args.victims)
    limit = args.enumerate_limit
    if limit is None:
        limit = args.online_budget
    report = crossover_report(
        [
            (meter.name, guess_stream_for(meter, limit=limit)),
            (baseline.name, guess_stream_for(baseline, limit=limit)),
        ],
        victims,
        online_budget=args.online_budget,
        offline_budget=args.offline_budget,
        policy=args.policy,
        enumerate_limit=limit,
    )
    for label, attribute in (("online", "online"), ("offline", "offline")):
        grid = [
            point.guesses for point in getattr(report.curves[0], attribute)
        ]
        rows = []
        for curve in report.curves:
            points = getattr(curve, attribute)
            rows.append(
                [curve.name]
                + [format_percent(p.cracked_fraction) for p in points]
            )
        print(format_table(
            ["meter"] + [f"{g:,}" for g in grid],
            rows,
            title=f"{label} cracked fraction by guess budget",
        ))
        print()
    for label, flip in (
        ("online", report.online_crossover),
        ("offline", report.offline_crossover),
    ):
        if flip is None:
            print(f"{label} crossover: none "
                  f"(one meter leads throughout)")
        else:
            guesses, first, second = flip
            print(
                f"{label} crossover at {int(guesses):,} guesses: "
                f"{report.curves[0].name} {format_percent(first)} vs "
                f"{report.curves[1].name} {format_percent(second)}"
            )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    telemetry_flags = (args.base, args.train_corpus, args.stream)
    if any(telemetry_flags):
        if not all(telemetry_flags):
            print("error: telemetry mode needs all of --base, --train "
                  "and --stream", file=sys.stderr)
            return 2
        if args.corpus:
            print("error: the corpus positional and --base/--train/"
                  "--stream are mutually exclusive", file=sys.stderr)
            return 2
        return _cmd_profile_pipeline(args)
    if not args.corpus:
        print("error: a corpus file (or --base/--train/--stream) "
              "is required", file=sys.stderr)
        return 2
    from repro.datasets.zipf import fit_zipf, ideal_meter_coverage
    from repro.metrics.guesswork import guessing_profile
    corpus = load_corpus(args.corpus)
    summary = guessing_profile(corpus, online_budget=args.online_budget)
    rows = [
        ["unique / total", f"{corpus.unique:,} / {corpus.total:,}"],
        ["min-entropy", f"{summary.min_entropy_bits:.2f} bits"],
        ["Shannon entropy", f"{summary.shannon_bits:.2f} bits"],
        [f"lambda_{args.online_budget} (online success)",
         format_percent(summary.online_success_rate)],
        ["mu_0.5 (median work factor)",
         f"{summary.offline_work_factor:,} guesses"],
        ["G~_0.5 (effective guesswork)",
         f"{summary.effective_guesswork_bits:.2f} bits"],
    ]
    try:
        fit = fit_zipf(corpus)
        mass, unique = ideal_meter_coverage(corpus, threshold=4)
        rows.append(["Zipf exponent (R^2)",
                     f"{fit.exponent:.2f} ({fit.r_squared:.3f})"])
        rows.append(["f>=4 coverage (mass / unique)",
                     f"{format_percent(mass)} / {format_percent(unique)}"])
    except ValueError:
        rows.append(["Zipf exponent", "n/a (too few repeated passwords)"])
    print(format_table(
        ["quantity", "value"], rows,
        title=f"guessing profile: {corpus.name}",
    ))
    return 0


def _cmd_profile_pipeline(args: argparse.Namespace) -> int:
    """Train-and-score a workload under telemetry; emit the report."""
    from repro import obs
    from repro.obs.report import build_report, render_report
    from repro.persistence import save_telemetry_report
    base = load_corpus(args.base)
    training = load_corpus(args.train_corpus)
    stream_corpus = load_corpus(args.stream)
    stream = list(stream_corpus.expand())
    options = {"jobs": args.jobs}
    if args.parse_cache_size is not None:
        from repro.core.meter import FuzzyPSMConfig
        options["fuzzy_config"] = FuzzyPSMConfig(
            parse_cache_size=args.parse_cache_size
        )
    with obs.session() as telemetry:
        with telemetry.timer("profile.load.seconds"):
            base_dictionary = base.unique_passwords()
            training_items = list(training.items())
        with telemetry.timer("profile.train.seconds"):
            meter = registry.build_meter(
                "fuzzypsm",
                TrainContext(
                    training=tuple(training_items),
                    base_dictionary=tuple(base_dictionary),
                    options=options,
                ),
            )
        with telemetry.timer("profile.score.seconds"):
            for _ in range(max(1, args.repeat)):
                _score_stream(meter, stream, args.score_jobs)
        # Structural cache state (occupancy/capacity) complements the
        # hit/miss/evict counters that live in the telemetry snapshot.
        parser = getattr(meter, "parser", None)
        report = build_report(
            telemetry.snapshot(),
            parse_cache_info=(
                parser.cache_info() if parser is not None else None
            ),
        )
    report["workload"] = {
        "base": args.base,
        "train": args.train_corpus,
        "stream": args.stream,
        "stream_passwords": len(stream),
        "stream_distinct": stream_corpus.unique,
        "repeat": max(1, args.repeat),
        "jobs": args.jobs,
        "score_jobs": args.score_jobs,
    }
    if args.output:
        save_telemetry_report(report, args.output)
    if args.output_format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for line in render_report(report):
            print(line)
        if args.output:
            print(f"\nreport written to {args.output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import describe_rules, run as run_lint
    from repro.analysis.reporters import render_rule_table_markdown
    if args.list_rules:
        if args.output_format == "markdown":
            print(render_rule_table_markdown(describe_rules()), end="")
        else:
            print(format_table(
                ["id", "name", "summary"],
                [list(row) for row in describe_rules()],
                title="repro lint rule catalogue",
            ))
        return 0
    if args.output_format == "markdown":
        print(
            "error: --format markdown is only valid with --list-rules",
            file=sys.stderr,
        )
        return 2
    cache_path = None if args.no_cache else args.cache_path
    return run_lint(
        args.paths, output_format=args.output_format, select=args.select,
        jobs=args.jobs, cache_path=cache_path, fix=args.fix,
    )


async def _serve_until_signal(
    registry: SnapshotRegistry, config: ServeConfig
) -> int:
    """Run the server until SIGINT/SIGTERM, then drain and stop."""
    server = ReproServer(registry, config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            break
    print(
        f"serving {config.workers} worker(s) on "
        f"http://{config.host}:{server.port}",
        flush=True,
    )
    print("models: " + ", ".join(server.models), flush=True)
    try:
        await stop.wait()
    finally:
        await server.stop()
    return 0


def _parse_model_spec(spec: str) -> Tuple[str, str]:
    """``NAME=PATH`` → ``(name, path)``; a bare path names itself.

    A spec counts as named only when the part before the first ``=``
    is non-empty and not itself a path; bare paths take their file
    stem as the model name.
    """
    name, separator, path = spec.partition("=")
    if separator and name and os.sep not in name:
        return name, path
    stem = os.path.splitext(os.path.basename(spec))[0]
    return stem or "default", spec


def _cmd_serve(args: argparse.Namespace) -> int:
    registry = SnapshotRegistry()
    for spec in args.models:
        name, path = _parse_model_spec(spec)
        try:
            registry.add(name, load_meter(path))
        except ValueError as error:
            print(f"error: --model {spec}: {error}", file=sys.stderr)
            return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        max_body=args.max_body,
    )
    try:
        return asyncio.run(_serve_until_signal(registry, config))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


_HANDLERS = {
    "survey": _cmd_survey,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "measure": _cmd_measure,
    "guess": _cmd_guess,
    "meters": _cmd_meters,
    "scenarios": _cmd_scenarios,
    "experiment": _cmd_experiment,
    "coach": _cmd_coach,
    "attack": _cmd_attack,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
