"""Observability for the scoring pipeline (DESIGN.md §9).

The package keeps one process-wide backend that every probe in the
hot path reports to:

* :class:`~repro.obs.core.NoopTelemetry` — the default; probes cost
  one attribute check (guarded) or one empty method call (unguarded);
* :class:`~repro.obs.core.Telemetry` — the collecting backend, with
  counters, fixed log-spaced histograms and span timers.

Selection is by config, not code edits::

    from repro import obs

    with obs.session() as tel:            # scoped collection
        meter.probability_many(stream)
    report = tel.snapshot()

    obs.enable()                          # process-wide, until disable()
    obs.disable()

Setting the environment variable ``REPRO_TELEMETRY`` to ``1``/``true``
/``yes``/``on`` enables a collecting backend at import time, so any
entry point (CLI, pytest, scripts) can be profiled without a code
change.  ``repro profile`` and the experiments runner install scoped
sessions themselves.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.core import (
    Clock,
    Histogram,
    NoopTelemetry,
    Span,
    Telemetry,
    log_spaced_bounds,
    now,
)
from repro.obs.report import build_report, render_report

__all__ = [
    "Clock",
    "Histogram",
    "NoopTelemetry",
    "Span",
    "Telemetry",
    "build_report",
    "disable",
    "enable",
    "get",
    "log_spaced_bounds",
    "now",
    "render_report",
    "session",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _backend_from_environment() -> Telemetry:
    value = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return Telemetry() if value in _TRUTHY else NoopTelemetry()


_ACTIVE: Telemetry = _backend_from_environment()


def get() -> Telemetry:
    """The active backend (fetch once per function, not per item)."""
    return _ACTIVE


def enable(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install a collecting backend process-wide and return it."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> None:
    """Restore the zero-overhead no-op backend."""
    global _ACTIVE
    _ACTIVE = NoopTelemetry()


@contextmanager
def session(clock: Clock = now) -> Iterator[Telemetry]:
    """A scoped collecting backend; the previous one is restored.

    Sessions nest: an inner session shadows (and does not leak into)
    an outer one, which keeps ``repro profile`` runs and experiment
    telemetry snapshots independent of process-wide state.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Telemetry(clock=clock)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
