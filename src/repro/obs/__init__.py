"""Observability for the scoring pipeline (DESIGN.md §9).

The package keeps one process-wide backend that every probe in the
hot path reports to:

* :class:`~repro.obs.core.NoopTelemetry` — the default; probes cost
  one attribute check (guarded) or one empty method call (unguarded);
* :class:`~repro.obs.core.Telemetry` — the collecting backend, with
  counters, fixed log-spaced histograms and span timers.

Selection is by config, not code edits::

    from repro import obs

    with obs.session() as tel:            # scoped collection
        meter.probability_many(stream)
    report = tel.snapshot()

    obs.enable()                          # process-wide, until disable()
    obs.disable()

Setting the environment variable ``REPRO_TELEMETRY`` to ``1``/``true``
/``yes``/``on`` enables a collecting backend at import time, so any
entry point (CLI, pytest, scripts) can be profiled without a code
change.  ``repro profile`` and the experiments runner install scoped
sessions themselves.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from typing import FrozenSet, Iterator, Optional

from repro.obs.core import (
    Clock,
    Histogram,
    NoopTelemetry,
    Span,
    Telemetry,
    log_spaced_bounds,
    now,
)
from repro.obs.report import build_report, render_report

__all__ = [
    "Clock",
    "Histogram",
    "NoopTelemetry",
    "Span",
    "Telemetry",
    "build_report",
    "disable",
    "enable",
    "get",
    "log_spaced_bounds",
    "now",
    "register_namespace",
    "registered_namespaces",
    "render_report",
    "session",
]

_NAMESPACE_RE = re.compile(r"^[a-z0-9_]+$")
_NAMESPACES: "set[str]" = set()


def register_namespace(prefix: str) -> str:
    """Declare a probe-name namespace (the head segment before ``.``).

    Every probe name emitted through the telemetry API is
    ``<namespace>.<segment>[.<segment>...]``; registering the
    namespace here is what makes it official.  The static gate
    (lint rule FPM014) harvests these literal calls project-wide and
    rejects probe names under unregistered heads, so a typo'd
    namespace cannot silently fork a metric series.  Returns the
    prefix so call sites can bind it if they want a constant.
    """
    if not _NAMESPACE_RE.match(prefix):
        raise ValueError(
            f"namespace {prefix!r} must be lowercase [a-z0-9_]+"
        )
    _NAMESPACES.add(prefix)
    return prefix


def registered_namespaces() -> FrozenSet[str]:
    """The namespaces declared so far (for reports and tests)."""
    return frozenset(_NAMESPACES)


# The probe namespaces in use across the package, declared centrally
# so the catalogue is readable in one place.  Keep the list sorted;
# add a line here (or a register_namespace call next to your probes)
# before emitting under a new head segment.
register_namespace("attack")
register_namespace("enum")
register_namespace("experiment")
register_namespace("lint")
register_namespace("meter")
register_namespace("parser")
register_namespace("profile")
register_namespace("serve")
register_namespace("shm")
register_namespace("stream")
register_namespace("train")
register_namespace("training")
register_namespace("trie")

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _backend_from_environment() -> Telemetry:
    value = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return Telemetry() if value in _TRUTHY else NoopTelemetry()


_ACTIVE: Telemetry = _backend_from_environment()


def get() -> Telemetry:
    """The active backend (fetch once per function, not per item)."""
    return _ACTIVE


def enable(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install a collecting backend process-wide and return it."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> None:
    """Restore the zero-overhead no-op backend."""
    global _ACTIVE
    _ACTIVE = NoopTelemetry()


@contextmanager
def session(clock: Clock = now) -> Iterator[Telemetry]:
    """A scoped collecting backend; the previous one is restored.

    Sessions nest: an inner session shadows (and does not leak into)
    an outer one, which keeps ``repro profile`` runs and experiment
    telemetry snapshots independent of process-wide state.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Telemetry(clock=clock)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
