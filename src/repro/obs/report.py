"""Turning raw telemetry snapshots into profile reports.

A snapshot (:meth:`repro.obs.core.Telemetry.snapshot`) is the raw
counter/histogram state.  A *report* adds the derived quantities an
operator actually asks about — parse-outcome mix, rule-hit shares,
cache hit rate — and is what ``repro profile`` emits and the
experiments runner attaches to its results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Bump when the report layout changes; persisted snapshots carry it.
REPORT_VERSION = 1


def _rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    return hits / total if total else None


def _share(part: int, whole: int) -> Optional[float]:
    return part / whole if whole else None


def build_report(
    snapshot: Dict[str, Any],
    parse_cache_info: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Derive the headline quantities from a telemetry snapshot.

    The returned document is JSON-ready and self-contained: it embeds
    the snapshot it was derived from under ``"telemetry"``.

    ``parse_cache_info`` optionally carries the structural cache state
    (:meth:`repro.core.parser.FuzzyParser.cache_info` — occupancy and
    capacity); when given, its keys are merged into the
    ``"parse_cache"`` section next to the hit/miss/evict counters.
    Omitting it leaves the report layout exactly as before.
    """
    counters: Dict[str, int] = snapshot.get("counters", {})
    trie_hits = counters.get("parser.segment.trie_hit", 0)
    fallbacks = counters.get("parser.segment.fallback", 0)
    segments = trie_hits + fallbacks
    parses = counters.get("parser.parse", 0)
    cache_hits = counters.get("parser.cache.hit", 0)
    cache_misses = counters.get("parser.cache.miss", 0)
    parse_cache: Dict[str, Any] = {
        "hits": cache_hits,
        "misses": cache_misses,
        "evictions": counters.get("parser.cache.evict", 0),
        "hit_rate": _rate(cache_hits, cache_misses),
    }
    if parse_cache_info is not None:
        parse_cache.update(parse_cache_info)
    return {
        "report_version": REPORT_VERSION,
        "parse_outcomes": {
            "parses": parses,
            "segments": segments,
            "trie_hit": trie_hits,
            "fallback": fallbacks,
            "trie_hit_share": _share(trie_hits, segments),
            "rule_hits": {
                "capitalization": counters.get(
                    "parser.rule.capitalization", 0
                ),
                "leet": counters.get("parser.rule.leet", 0),
                "reverse": counters.get("parser.rule.reverse", 0),
                "allcaps": counters.get("parser.rule.allcaps", 0),
            },
        },
        "parse_cache": parse_cache,
        "stages": {
            name: histogram
            for name, histogram in snapshot.get("histograms", {}).items()
            if name.endswith(".seconds")
        },
        "telemetry": snapshot,
    }


def _format_optional_rate(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value * 100.0:.1f}%"


def render_report(report: Dict[str, Any]) -> List[str]:
    """Human-readable lines for a report (the ``--format text`` view)."""
    outcomes = report["parse_outcomes"]
    cache = report["parse_cache"]
    lines = [
        f"parses          : {outcomes['parses']:,}",
        f"segments        : {outcomes['segments']:,} "
        f"(trie-hit {outcomes['trie_hit']:,}, "
        f"fallback {outcomes['fallback']:,}, "
        f"trie-hit share "
        f"{_format_optional_rate(outcomes['trie_hit_share'])})",
    ]
    for rule, hits in outcomes["rule_hits"].items():
        lines.append(f"rule {rule:<14}: {hits:,}")
    lines.append(
        f"parse cache     : {cache['hits']:,} hits / "
        f"{cache['misses']:,} misses "
        f"(hit rate {_format_optional_rate(cache['hit_rate'])}, "
        f"{cache['evictions']:,} evictions)"
    )
    if "capacity" in cache:
        lines.append(
            f"parse cache size: {cache.get('size', 0):,} of "
            f"{cache['capacity']:,} entries"
        )
    for stage, histogram in report["stages"].items():
        lines.append(
            f"stage {stage:<24}: {histogram['count']:,} x, "
            f"total {histogram['sum']:.3f} s, "
            f"mean {histogram['mean'] * 1e3:.2f} ms"
        )
    counters: Dict[str, int] = report["telemetry"].get("counters", {})
    for name, value in counters.items():
        lines.append(f"counter {name:<28}: {value:,}")
    return lines
