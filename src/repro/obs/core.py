"""Counters, log-spaced histograms and span timers for the hot path.

The scoring pipeline (parse → derive → score) is instrumented with
three primitive kinds:

* **counters** — monotonically increasing integers keyed by a dotted
  probe name (``parser.segment.trie_hit``);
* **histograms** — fixed log-spaced buckets over non-negative values
  (stage latencies in seconds, batch sizes).  Bucket boundaries are
  frozen at class level, so two snapshots are always mergeable and a
  test can assert exact bucket placement without touching the wall
  clock;
* **spans** — context-manager stage timers that observe their elapsed
  time into a histogram (``with tel.timer("train.serial.seconds"):``).

:class:`Telemetry` aggregates all three; :class:`NoopTelemetry` is the
zero-overhead backend installed by default (every probe degrades to a
predicate check or an empty method call).  Hot loops must fetch the
active backend once and guard per-item work with ``if tel.enabled:``
— see DESIGN.md §9 for the probe authoring rules.

The clock is injectable (``Telemetry(clock=...)``) so span tests run
against a fake clock: nothing in this module's test surface depends on
wall-clock time.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

#: Signature of an injectable monotonic clock (seconds as float).
Clock = Callable[[], float]

#: The process-wide monotonic clock used when none is injected.  Other
#: ``repro`` modules that need a raw timestamp (e.g. worker-side chunk
#: timing in :mod:`repro.core.training`) import this name instead of
#: calling :mod:`time` directly — the FPM009 lint rule forbids direct
#: wall-clock calls outside ``obs/`` so every timing source stays
#: swappable in one place.
now: Clock = time.perf_counter


def log_spaced_bounds(
    lowest: float, steps_per_decade: int, decades: int
) -> Tuple[float, ...]:
    """Fixed log-spaced bucket boundaries, smallest first.

    >>> [round(b, 6) for b in log_spaced_bounds(1e-3, 1, 3)]
    [0.001, 0.01, 0.1]
    """
    return tuple(
        lowest * 10.0 ** (step / steps_per_decade)
        for step in range(steps_per_decade * decades)
    )


class Histogram:
    """A fixed-bucket histogram over non-negative float values.

    Buckets are the half-open intervals between consecutive
    boundaries, plus an underflow bucket below the first boundary and
    an overflow bucket at the end.  The default boundaries span 1 µs
    to 1000 s with four buckets per decade — wide enough for both
    stage latencies (seconds) and batch sizes (counts).
    """

    #: 1e-6 .. 1e+3 at 4 buckets/decade: 36 boundaries, 37 buckets.
    BOUNDS: Tuple[float, ...] = log_spaced_bounds(
        1e-6, steps_per_decade=4, decades=9
    )

    __slots__ = ("_bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self._bucket_counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one value (clamped into the fixed bucket range)."""
        self._bucket_counts[bisect_right(self.BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_index(self, value: float) -> int:
        """The bucket an observation of ``value`` lands in."""
        return bisect_right(self.BOUNDS, value)

    def nonzero_buckets(self) -> List[Tuple[Optional[float], int]]:
        """``(upper_bound, count)`` for every occupied bucket.

        The upper bound is the first boundary strictly above the
        bucket's values; the overflow bucket reports ``None``.
        """
        out: List[Tuple[Optional[float], int]] = []
        for index, bucket_count in enumerate(self._bucket_counts):
            if bucket_count:
                bound = (
                    self.BOUNDS[index] if index < len(self.BOUNDS) else None
                )
                out.append((bound, bucket_count))
        return out

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready summary (occupied buckets only)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": bucket_count}
                for bound, bucket_count in self.nonzero_buckets()
            ],
        }


class Span:
    """A context-manager stage timer feeding one histogram.

    Entering reads the telemetry clock, exiting observes the elapsed
    seconds under the span's probe name.  Exceptions propagate — a
    failed stage still records how long it ran.
    """

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self._telemetry.clock()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self._telemetry.observe(
            self._name, self._telemetry.clock() - self._start
        )


class Telemetry:
    """The collecting backend: named counters, histograms and spans.

    One instance aggregates a session's probes; it is not shared
    across processes (``multiprocessing`` workers each see their own
    backend, and only parent-side probes reach a session snapshot).
    """

    #: Hot loops guard per-item probes with ``if tel.enabled:``.
    enabled: bool = True

    #: Deferred events are folded into counters once the buffer holds
    #: this many — bounds memory while keeping the drain burst out of
    #: any realistically-sized scoring sweep.
    DEFER_LIMIT: int = 65536

    def __init__(self, clock: Clock = now) -> None:
        self.clock: Clock = clock
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._deferred: List[Tuple[Callable[["Telemetry", Any], None], Any]] = []

    # --- recording ----------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter called ``name``."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount

    def incr_many(self, items: List[Tuple[str, int]]) -> None:
        """Bulk :meth:`incr` — one dispatch for a whole probe group.

        Per-parse probe sites emit several counters at once; paying a
        single method call keeps the enabled-backend overhead inside
        the <5% budget (DESIGN.md §9).
        """
        counters = self._counters
        for name, amount in items:
            counters[name] = counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram called ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def timer(self, name: str) -> Span:
        """A span whose elapsed seconds land in histogram ``name``."""
        return Span(self, name)

    def defer(self, handler: Callable[["Telemetry", Any], None],
              event: Any) -> None:
        """Buffer ``event`` for aggregation at first read.

        The hot path pays one append; ``handler(self, event)`` runs
        when a reader drains the buffer (or when it reaches
        ``DEFER_LIMIT``).  This is how per-parse probes stay inside
        the <5% enabled-overhead budget: recording is an O(1) buffer
        push, aggregation happens at report time.
        """
        deferred = self._deferred
        deferred.append((handler, event))
        if len(deferred) >= self.DEFER_LIMIT:
            self._drain()

    def _drain(self) -> None:
        """Fold every buffered event into counters/histograms."""
        while self._deferred:
            drained = self._deferred
            self._deferred = []
            for handler, event in drained:
                handler(self, event)

    # --- reading ------------------------------------------------------

    def counter(self, name: str) -> int:
        """The counter's current value (0 when never incremented)."""
        self._drain()
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        self._drain()
        return self._histograms.get(name)

    def counters(self) -> Dict[str, int]:
        """A copy of every counter, sorted by probe name."""
        self._drain()
        return dict(sorted(self._counters.items()))

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of everything recorded so far."""
        self._drain()
        return {
            "enabled": self.enabled,
            "counters": self.counters(),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every recorded value (the backend stays installed)."""
        self._counters.clear()
        self._histograms.clear()
        self._deferred.clear()


class _NoopSpan:
    """The shared do-nothing span handed out by the no-op backend."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTelemetry(Telemetry):
    """The zero-overhead default backend: every probe is a no-op.

    ``enabled`` is False, so guarded hot-loop probes reduce to one
    attribute check; unguarded probes reduce to an empty method call.
    ``timer`` returns a shared span object, so ``with tel.timer(...)``
    allocates nothing.
    """

    enabled = False

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def incr_many(self, items: List[Tuple[str, int]]) -> None:
        pass

    def defer(self, handler: Callable[[Telemetry, Any], None],
              event: Any) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def timer(self, name: str) -> Span:
        return _NOOP_SPAN  # type: ignore[return-value]
