"""fuzzyPSM — fuzzy-PCFG password strength metering (DSN 2016 repro).

Quick start::

    from repro import FuzzyPSM

    meter = FuzzyPSM.train(
        base_dictionary=["password", "123456", "iloveyou"],
        training=["password123", "Password1", "p@ssw0rd"],
    )
    meter.probability("P@ssword123")   # higher = weaker
    meter.update("newuserpassword1")   # adaptive update phase

The package layout follows the paper:

* :mod:`repro.core` — fuzzyPSM itself (trie, fuzzy grammar, parser,
  training, meter);
* :mod:`repro.meters` — the five comparison meters plus the
  practically-ideal meter;
* :mod:`repro.metrics` — rank correlations and guess numbers;
* :mod:`repro.datasets` — corpora: containers, loaders, published
  profiles and the survey-grounded synthetic generator;
* :mod:`repro.survey` — the paper's user-survey aggregates;
* :mod:`repro.experiments` — the Table-XI scenario harness.
"""

from repro.core import (
    BucketScale,
    BucketedMeter,
    FuzzyGrammar,
    FuzzyPSM,
    FuzzyPSMConfig,
    PasswordPolicy,
    PrefixTrie,
    calibrate_scale,
    suggest_stronger,
)
from repro.meters import (
    Meter,
    ProbabilisticMeter,
    IdealMeter,
    PCFGMeter,
    MarkovMeter,
    Smoothing,
    ZxcvbnMeter,
    KeePSMMeter,
    NISTMeter,
)
from repro.datasets import (
    PasswordCorpus,
    SyntheticEcosystem,
    generate_corpus,
    load_corpus,
    save_corpus,
)
from repro.metrics import spearman_rho, kendall_tau, MonteCarloEstimator
from repro.persistence import load_meter, save_meter

__version__ = "1.0.0"

__all__ = [
    "FuzzyPSM",
    "FuzzyPSMConfig",
    "FuzzyGrammar",
    "PrefixTrie",
    "Meter",
    "ProbabilisticMeter",
    "IdealMeter",
    "PCFGMeter",
    "MarkovMeter",
    "Smoothing",
    "ZxcvbnMeter",
    "KeePSMMeter",
    "NISTMeter",
    "PasswordCorpus",
    "SyntheticEcosystem",
    "generate_corpus",
    "load_corpus",
    "save_corpus",
    "spearman_rho",
    "kendall_tau",
    "MonteCarloEstimator",
    "BucketScale",
    "BucketedMeter",
    "calibrate_scale",
    "PasswordPolicy",
    "suggest_stronger",
    "save_meter",
    "load_meter",
    "__version__",
]
