"""Top-k rank-correlation curves (paper Figs. 9 and 13).

A point at x = k on those figures is the correlation between a meter's
output and the ideal meter's output computed on the set of the top
1, 2, ..., k ranked test passwords (ranked by the ideal meter, i.e. by
empirical popularity).  This module computes those curves over a
logarithmic grid of k values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.metrics.rank import kendall_tau

Metric = Callable[[Sequence[float], Sequence[float]], float]


@dataclass(frozen=True)
class CurvePoint:
    """One (k, correlation) point of a top-k curve."""

    k: int
    value: float


def log_grid(n: int, points_per_decade: int = 5, start: int = 10) -> List[int]:
    """Logarithmically spaced k values in ``[start, n]``, ending at n.

    >>> log_grid(100, points_per_decade=2)
    [10, 32, 100]
    """
    if n < 2:
        raise ValueError("need at least two items")
    start = min(start, n)
    grid = []
    exponent = math.log10(start)
    step = 1.0 / points_per_decade
    while True:
        k = round(10 ** exponent)
        if k >= n:
            break
        if not grid or k > grid[-1]:
            grid.append(k)
        exponent += step
    if not grid or grid[-1] != n:
        grid.append(n)
    return grid


def correlation_curve(
    ideal_scores: Sequence[float],
    meter_scores: Sequence[float],
    ks: Optional[Sequence[int]] = None,
    metric: Metric = kendall_tau,
) -> List[CurvePoint]:
    """Correlation over top-k prefixes, k on a log grid by default.

    Both score vectors are aligned (same password per index).  The
    prefix order is *descending ideal score* — the ideal meter's
    popularity ranking — with score ties broken deterministically by
    index so curves are reproducible.
    """
    if len(ideal_scores) != len(meter_scores):
        raise ValueError("score vectors must have equal length")
    n = len(ideal_scores)
    if n < 2:
        raise ValueError("need at least two passwords")
    order = sorted(range(n), key=lambda i: (-ideal_scores[i], i))
    ideal_sorted = [ideal_scores[i] for i in order]
    meter_sorted = [meter_scores[i] for i in order]
    if ks is None:
        ks = log_grid(n)
    points = []
    for k in ks:
        if k < 2 or k > n:
            raise ValueError(f"k={k} outside [2, {n}]")
        points.append(
            CurvePoint(k, metric(ideal_sorted[:k], meter_sorted[:k]))
        )
    return points


def curve_summary(points: Sequence[CurvePoint]) -> Tuple[float, float]:
    """(mean correlation, final-k correlation) — compact curve digest."""
    if not points:
        raise ValueError("empty curve")
    mean = sum(p.value for p in points) / len(points)
    return mean, points[-1].value


def crossover_point(
    curve_a: Sequence[Tuple[float, float]],
    curve_b: Sequence[Tuple[float, float]],
) -> Optional[Tuple[float, float, float]]:
    """First grid point where two curves' ordering flips.

    Both curves are ``(x, value)`` sequences over the *same* x grid
    (e.g. two meters' cracking curves over shared guess checkpoints).
    The initial leader is whichever curve is ahead at the first grid
    point where they differ; the crossover is the first later point
    where the other curve is ahead, returned as ``(x, value_a,
    value_b)``.  ``None`` when the initial ordering holds throughout
    (or the curves never separate).

    >>> a = [(10, 0.1), (100, 0.3), (1000, 0.5)]
    >>> b = [(10, 0.2), (100, 0.3), (1000, 0.4)]
    >>> crossover_point(a, b)
    (1000, 0.5, 0.4)
    >>> crossover_point(b, a)
    (1000, 0.4, 0.5)
    >>> crossover_point(a, a) is None
    True
    """
    if len(curve_a) != len(curve_b):
        raise ValueError("curves must share their checkpoint grid")
    leader = 0
    for (x_a, value_a), (x_b, value_b) in zip(curve_a, curve_b):
        if x_a != x_b:
            raise ValueError("curves must share their checkpoint grid")
        sign = (value_a > value_b) - (value_a < value_b)
        if sign == 0:
            continue
        if leader == 0:
            leader = sign
        elif sign != leader:
            return (x_a, value_a, value_b)
    return None
