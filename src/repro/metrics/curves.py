"""Top-k rank-correlation curves (paper Figs. 9 and 13).

A point at x = k on those figures is the correlation between a meter's
output and the ideal meter's output computed on the set of the top
1, 2, ..., k ranked test passwords (ranked by the ideal meter, i.e. by
empirical popularity).  This module computes those curves over a
logarithmic grid of k values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.metrics.rank import kendall_tau

Metric = Callable[[Sequence[float], Sequence[float]], float]


@dataclass(frozen=True)
class CurvePoint:
    """One (k, correlation) point of a top-k curve."""

    k: int
    value: float


def log_grid(n: int, points_per_decade: int = 5, start: int = 10) -> List[int]:
    """Logarithmically spaced k values in ``[start, n]``, ending at n.

    >>> log_grid(100, points_per_decade=2)
    [10, 32, 100]
    """
    if n < 2:
        raise ValueError("need at least two items")
    start = min(start, n)
    grid = []
    exponent = math.log10(start)
    step = 1.0 / points_per_decade
    while True:
        k = round(10 ** exponent)
        if k >= n:
            break
        if not grid or k > grid[-1]:
            grid.append(k)
        exponent += step
    if not grid or grid[-1] != n:
        grid.append(n)
    return grid


def correlation_curve(
    ideal_scores: Sequence[float],
    meter_scores: Sequence[float],
    ks: Optional[Sequence[int]] = None,
    metric: Metric = kendall_tau,
) -> List[CurvePoint]:
    """Correlation over top-k prefixes, k on a log grid by default.

    Both score vectors are aligned (same password per index).  The
    prefix order is *descending ideal score* — the ideal meter's
    popularity ranking — with score ties broken deterministically by
    index so curves are reproducible.
    """
    if len(ideal_scores) != len(meter_scores):
        raise ValueError("score vectors must have equal length")
    n = len(ideal_scores)
    if n < 2:
        raise ValueError("need at least two passwords")
    order = sorted(range(n), key=lambda i: (-ideal_scores[i], i))
    ideal_sorted = [ideal_scores[i] for i in order]
    meter_sorted = [meter_scores[i] for i in order]
    if ks is None:
        ks = log_grid(n)
    points = []
    for k in ks:
        if k < 2 or k > n:
            raise ValueError(f"k={k} outside [2, {n}]")
        points.append(
            CurvePoint(k, metric(ideal_sorted[:k], meter_sorted[:k]))
        )
    return points


def curve_summary(points: Sequence[CurvePoint]) -> Tuple[float, float]:
    """(mean correlation, final-k correlation) — compact curve digest."""
    if not points:
        raise ValueError("empty curve")
    mean = sum(p.value for p in points) / len(points)
    return mean, points[-1].value
