"""Partial guessing metrics (Bonneau, IEEE S&P 2012 — paper ref [42]).

The paper's security model rests on Bonneau's statistical guessing
framework: a trawling attacker tries passwords in decreasing order of
probability, and a distribution's resistance is captured not by
Shannon entropy but by *partial* guessing metrics:

* ``min_entropy``            — ``-log2(p_1)``; the one-guess attacker;
* ``beta_success_rate``      — ``lambda_beta``: probability mass an
  attacker with ``beta`` guesses captures (Table I's online attacker,
  ``beta < 10^4``);
* ``alpha_work_factor``      — ``mu_alpha``: guesses needed to have
  probability ``alpha`` of success;
* ``alpha_guesswork``        — ``G_alpha``: expected guesses per
  account for an attacker who stops after securing ``alpha`` mass;
* the ``effective key length`` (bits) conversions of each, which make
  numbers comparable across distributions and match ``log2(N)`` on a
  uniform distribution of ``N`` items.

All functions accept a :class:`~repro.datasets.corpus.PasswordCorpus`
and operate on its empirical distribution — the same object the
paper's practically ideal meter is built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.datasets.corpus import PasswordCorpus


def _descending_probabilities(corpus: PasswordCorpus) -> List[float]:
    if corpus.total == 0:
        raise ValueError("empty corpus")
    total = corpus.total
    return [count / total for _, count in corpus.most_common()]


def min_entropy(corpus: PasswordCorpus) -> float:
    """``H_inf = -log2(p_1)``: resistance to the single best guess.

    >>> corpus = PasswordCorpus(["a"] * 2 + ["b", "c"])
    >>> min_entropy(corpus)
    1.0
    """
    probabilities = _descending_probabilities(corpus)
    return -math.log2(probabilities[0])


def shannon_entropy(corpus: PasswordCorpus) -> float:
    """``H_1``; included for contrast — the paper (after [17], [18])
    stresses that it badly over-states guessing resistance."""
    return -sum(
        p * math.log2(p) for p in _descending_probabilities(corpus)
    )


def beta_success_rate(corpus: PasswordCorpus, beta: int) -> float:
    """``lambda_beta``: mass captured by ``beta`` optimal guesses.

    >>> corpus = PasswordCorpus(["a"] * 5 + ["b"] * 3 + ["c"] * 2)
    >>> beta_success_rate(corpus, 1)
    0.5
    >>> beta_success_rate(corpus, 2)
    0.8
    """
    if beta < 1:
        raise ValueError("beta must be positive")
    probabilities = _descending_probabilities(corpus)
    return min(sum(probabilities[:beta]), 1.0)


def effective_beta_bits(corpus: PasswordCorpus, beta: int) -> float:
    """``lambda-tilde``: bits such that a uniform distribution would
    yield the same beta-success rate (``log2(beta / lambda_beta)``)."""
    rate = beta_success_rate(corpus, beta)
    return math.log2(beta / rate)


def alpha_work_factor(corpus: PasswordCorpus, alpha: float) -> int:
    """``mu_alpha``: fewest guesses whose mass reaches ``alpha``.

    >>> corpus = PasswordCorpus(["a"] * 5 + ["b"] * 3 + ["c"] * 2)
    >>> alpha_work_factor(corpus, 0.5)
    1
    >>> alpha_work_factor(corpus, 0.9)
    3
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    cumulative = 0.0
    for index, probability in enumerate(
        _descending_probabilities(corpus), start=1
    ):
        cumulative += probability
        if cumulative >= alpha - 1e-12:
            return index
    return corpus.unique  # numeric edge: alpha ~ 1.0


def alpha_guesswork(corpus: PasswordCorpus, alpha: float) -> float:
    """``G_alpha``: expected guesses/account for an attacker who
    desists after covering ``alpha`` of the distribution.

    ``G_alpha = (1 - lambda) * mu + sum_{i<=mu} p_i * i`` where
    ``mu = mu_alpha`` and ``lambda = lambda_{mu}``.
    """
    probabilities = _descending_probabilities(corpus)
    mu = alpha_work_factor(corpus, alpha)
    covered = sum(probabilities[:mu])
    expected = sum(
        probability * index
        for index, probability in enumerate(probabilities[:mu], start=1)
    )
    return (1.0 - covered) * mu + expected


def effective_guesswork_bits(corpus: PasswordCorpus,
                             alpha: float) -> float:
    """``G-tilde_alpha`` in bits; equals ``log2(N)`` for a uniform
    distribution over ``N`` passwords at any ``alpha``.

    >>> uniform = PasswordCorpus({f"pw{i}": 1 for i in range(1024)})
    >>> round(effective_guesswork_bits(uniform, 0.5), 6)
    10.0
    """
    probabilities = _descending_probabilities(corpus)
    mu = alpha_work_factor(corpus, alpha)
    covered = sum(probabilities[:mu])
    guesswork = alpha_guesswork(corpus, alpha)
    return (
        math.log2(2.0 * guesswork / covered - 1.0)
        - math.log2(2.0 - covered)
    )


@dataclass(frozen=True)
class GuessingProfile:
    """The standard partial-guessing summary of one corpus."""

    corpus: str
    min_entropy_bits: float
    shannon_bits: float
    online_success_rate: float       # lambda at the online budget
    offline_work_factor: int         # mu_0.5
    effective_guesswork_bits: float  # G-tilde_0.5

    ONLINE_BUDGET = 1_000


def guessing_profile(corpus: PasswordCorpus,
                     online_budget: int = GuessingProfile.ONLINE_BUDGET
                     ) -> GuessingProfile:
    """One-call summary used by the corpus-analysis tooling."""
    return GuessingProfile(
        corpus=corpus.name,
        min_entropy_bits=min_entropy(corpus),
        shannon_bits=shannon_entropy(corpus),
        online_success_rate=beta_success_rate(corpus, online_budget),
        offline_work_factor=alpha_work_factor(corpus, 0.5),
        effective_guesswork_bits=effective_guesswork_bits(corpus, 0.5),
    )


def compare_profiles(corpora: Sequence[PasswordCorpus],
                     online_budget: int = GuessingProfile.ONLINE_BUDGET
                     ) -> List[GuessingProfile]:
    """Profiles for several corpora, weakest (by online rate) first."""
    profiles = [
        guessing_profile(corpus, online_budget) for corpus in corpora
    ]
    profiles.sort(key=lambda p: -p.online_success_rate)
    return profiles
