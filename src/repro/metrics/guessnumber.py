"""Guess-number computation (paper Sec. II-B, Fig. 10, Table II).

A password's *guess number* under a model is its 1-based position in
the model's decreasing-probability guess stream.  Two computations:

* :func:`guess_numbers_by_enumeration` — exact, by generating guesses
  (practical up to ~10^6 on a laptop);
* :class:`MonteCarloEstimator` — the sampling estimator of Dell'Amico &
  Filippone (CCS 2015): with i.i.d. model samples ``p_1..p_n``, the
  number of passwords whose model probability exceeds ``p`` is
  estimated by ``(1/n) * sum_{i: p_i > p} 1 / p_i``, which converges to
  the true guess number and needs no enumeration.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class MonteCarloEstimator:
    """Monte-Carlo guess numbers for a sampleable probabilistic meter.

    Args:
        sampler: any object with ``sample(rng) -> (password, probability)``
            — a meter like :class:`repro.core.meter.FuzzyPSM` (whose
            ``sample`` runs on the attack engine's compiled
            :class:`~repro.attacks.engine.FrozenSampler`), an
            :class:`~repro.attacks.engine.AttackEngine` directly, or a
            baseline meter.
        sample_size: number of model samples to draw.
        rng: source of randomness (pass a seeded ``random.Random`` for
            reproducible estimates).
    """

    def __init__(self, sampler, sample_size: int = 10_000,
                 rng: Optional[random.Random] = None) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        rng = rng or random.Random(0)
        probabilities: List[float] = []
        for _ in range(sample_size):
            _, probability = sampler.sample(rng)
            if probability > 0:
                probabilities.append(probability)
        probabilities.sort()
        self._sorted_probabilities = probabilities
        self._sample_size = sample_size
        # cumulative_inverse[i] = sum of 1/p over probabilities[i:].
        cumulative = 0.0
        suffix_sums = [0.0] * (len(probabilities) + 1)
        for i in range(len(probabilities) - 1, -1, -1):
            cumulative += 1.0 / probabilities[i]
            suffix_sums[i] = cumulative
        self._suffix_sums = suffix_sums

    @property
    def sample_size(self) -> int:
        return self._sample_size

    def guess_number(self, probability: float) -> float:
        """Estimated guess number of a password with model probability.

        ``probability == 0`` (underivable password) maps to ``inf`` —
        the modelled attacker never reaches it.
        """
        if probability < 0:
            raise ValueError("probability must be non-negative")
        if probability == 0.0:
            return math.inf
        index = bisect.bisect_right(self._sorted_probabilities, probability)
        return self._suffix_sums[index] / self._sample_size + 1.0

    def guess_numbers(self, probabilities: Iterable[float]) -> List[float]:
        return [self.guess_number(p) for p in probabilities]


def guess_numbers_by_enumeration(
    guesses: Iterator[Tuple[str, float]],
    targets: Sequence[str],
    limit: int,
) -> Dict[str, Optional[int]]:
    """Exact guess numbers by enumerating up to ``limit`` guesses.

    Returns ``target -> 1-based guess number`` (``None`` when the
    target was not produced within the horizon).  Duplicate guesses in
    the stream are counted once, mirroring a real cracking session.
    """
    if limit < 1:
        raise ValueError("limit must be positive")
    remaining = set(targets)
    results: Dict[str, Optional[int]] = {target: None for target in targets}
    seen = set()
    rank = 0
    for guess, _ in guesses:
        if guess in seen:
            continue
        seen.add(guess)
        rank += 1
        if guess in remaining:
            results[guess] = rank
            remaining.discard(guess)
            if not remaining:
                break
        if rank >= limit:
            break
    return results
