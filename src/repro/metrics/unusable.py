"""Un-usable guess counting (paper Table III).

A guess is *un-usable* when the cracking model produces it but it does
not appear in the test set; fewer un-usable guesses indicate a model
whose probability mass sits on real passwords.  The paper tabulates the
count at guess checkpoints 10^2, 10^4, 10^6, 10^7 for the PCFG- and
Markov-based models.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence, Set, Tuple


def count_unusable_guesses(
    guesses: Iterator[Tuple[str, float]],
    test_passwords: Iterable[str],
    checkpoints: Sequence[int],
) -> Dict[int, int]:
    """Number of guesses absent from the test set, at each checkpoint.

    Args:
        guesses: a decreasing-probability guess stream (duplicates are
            skipped, as a cracking session tries each string once).
        test_passwords: the test set (any iterable; consumed once).
        checkpoints: ascending guess-count horizons, e.g. ``[100, 10_000]``.

    Returns:
        ``checkpoint -> un-usable count``.  If the stream ends before a
        checkpoint, the count at exhaustion is reported for it.
    """
    if not checkpoints:
        raise ValueError("need at least one checkpoint")
    ordered = sorted(checkpoints)
    if ordered[0] < 1:
        raise ValueError("checkpoints must be positive")
    test_set: Set[str] = set(test_passwords)
    results: Dict[int, int] = {}
    unusable = 0
    rank = 0
    seen: Set[str] = set()
    remaining = list(ordered)
    for guess, _ in guesses:
        if guess in seen:
            continue
        seen.add(guess)
        rank += 1
        if guess not in test_set:
            unusable += 1
        while remaining and rank == remaining[0]:
            results[remaining.pop(0)] = unusable
        if not remaining:
            break
    # Stream exhausted before the largest checkpoints.
    for checkpoint in remaining:
        results[checkpoint] = unusable
    return results
