"""Non-parametric rank correlation (paper Sec. II-C).

The paper evaluates a meter by the correlation between its ranking of
the test passwords and the practically-ideal meter's ranking, using

* **Spearman rho** — Pearson correlation between rank vectors, with
  tied values assigned the average of their positions, and
* **Kendall tau-b** — the concordant/discordant pair statistic with the
  tie-corrected denominator of Adler (1957).

Both are implemented from scratch: Spearman via ranking + Pearson,
Kendall via Knight's O(n log n) merge-sort algorithm so the top-k
curves over 10^4-10^5 passwords stay fast.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def rankdata(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based); ties share the mean of their positions.

    >>> rankdata([10.0, 20.0, 20.0, 30.0])
    [1.0, 2.5, 2.5, 4.0]
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def _pearson(x: Sequence[float], y: Sequence[float]) -> float:
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    var_x = sum((a - mean_x) ** 2 for a in x)
    var_y = sum((b - mean_y) ** 2 for b in y)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rho in [-1, 1]; 1 = perfect agreement.

    >>> spearman_rho([1, 2, 3], [10, 20, 30])
    1.0
    >>> spearman_rho([1, 2, 3], [30, 20, 10])
    -1.0
    """
    if len(x) != len(y):
        raise ValueError("vectors must have equal length")
    if len(x) < 2:
        raise ValueError("need at least two observations")
    return _pearson(rankdata(x), rankdata(y))


def _count_inversions(values: List[float]) -> int:
    """Number of (i < j, values[i] > values[j]) pairs, by merge sort."""

    def sort(lo: int, hi: int) -> int:
        if hi - lo <= 1:
            return 0
        mid = (lo + hi) // 2
        inversions = sort(lo, mid) + sort(mid, hi)
        merged = []
        i, j = lo, mid
        while i < mid and j < hi:
            if values[i] <= values[j]:
                merged.append(values[i])
                i += 1
            else:
                inversions += mid - i
                merged.append(values[j])
                j += 1
        merged.extend(values[i:mid])
        merged.extend(values[j:hi])
        values[lo:hi] = merged
        return inversions

    return sort(0, len(values))


def _tie_pair_count(values: Sequence[float]) -> int:
    """Number of pairs tied on ``values``."""
    counts: dict = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def _joint_tie_pair_count(x: Sequence[float], y: Sequence[float]) -> int:
    counts: dict = {}
    for pair in zip(x, y):
        counts[pair] = counts.get(pair, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b in [-1, 1], tie-corrected (Knight's algorithm).

    ``tau = (P - Q) / sqrt((P + Q + Tx) * (P + Q + Ty))`` where ``P``/``Q``
    are concordant/discordant pair counts and ``Tx``/``Ty`` count pairs
    tied on one vector only (the paper's Eq. 7).

    >>> kendall_tau([1, 2, 3, 4], [1, 2, 3, 4])
    1.0
    >>> kendall_tau([1, 2, 3, 4], [4, 3, 2, 1])
    -1.0
    >>> round(kendall_tau([1, 2, 3, 4], [1, 3, 2, 4]), 4)
    0.6667
    """
    if len(x) != len(y):
        raise ValueError("vectors must have equal length")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two observations")

    total_pairs = n * (n - 1) // 2
    ties_x = _tie_pair_count(x)
    ties_y = _tie_pair_count(y)
    ties_xy = _joint_tie_pair_count(x, y)

    # Sort by x, then y; discordant pairs among x-untied pairs are the
    # inversions of the y sequence.
    order = sorted(range(n), key=lambda i: (x[i], y[i]))
    y_sorted = [y[i] for i in order]
    discordant = _count_inversions(list(y_sorted))

    # P + Q = pairs untied on both = total - ties_x - ties_y + ties_xy.
    untied_both = total_pairs - ties_x - ties_y + ties_xy
    concordant = untied_both - discordant
    numerator = concordant - discordant

    denom_x = total_pairs - ties_x
    denom_y = total_pairs - ties_y
    if denom_x == 0 or denom_y == 0:
        return 0.0
    return numerator / math.sqrt(denom_x * denom_y)
