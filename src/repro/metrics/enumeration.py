"""Lazy descending-probability enumeration over factored models.

Probabilistic password models (fuzzy PCFG, traditional PCFG, Markov)
factor a guess's probability into a product of independent choices.
Generating guesses in decreasing probability order is then the classic
"next function" problem (Weir et al., S&P 2009): explore the product
lattice with a max-heap, expanding one index at a time.

Two generic primitives live here:

* :func:`descending_products` — enumerate the cells of a product of
  individually-sorted factor lists in decreasing product order.
* :func:`merge_weighted_descending` — merge several already-descending
  streams, each scaled by an outer weight (e.g. per-structure streams
  weighted by structure probability).

Both are lazy: memory is bounded by the heap frontier, not the product
space, so ``10**6``-guess sessions are cheap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro import obs

T = TypeVar("T")

#: A factor is a probability-sorted (descending) list of (value, prob).
Factor = Sequence[Tuple[T, float]]


class LazyDescendingList(Generic[T]):
    """An indexable view over a descending ``(value, prob)`` iterator.

    Items are pulled from the underlying iterator on demand and cached,
    so several consumers (e.g. the slot of length 8 appearing in many
    base structures) can share one enumeration.

    The buffer grows with the deepest index requested; long sessions
    can bound it with ``max_buffer`` — reads past the bound behave as
    if the stream ended there (counted by ``enum.lazy.truncated``).
    """

    def __init__(
        self,
        stream: Iterator[Tuple[T, float]],
        max_buffer: Optional[int] = None,
    ) -> None:
        if max_buffer is not None and max_buffer < 1:
            raise ValueError("max_buffer must be >= 1")
        self._stream = stream
        self._buffer: List[Tuple[T, float]] = []
        self._exhausted = False
        self._max_buffer = max_buffer
        self._truncated = False

    def get(self, index: int) -> Optional[Tuple[T, float]]:
        """The ``index``-th item, or ``None`` when the stream is shorter."""
        maximum = self._max_buffer
        if maximum is not None and index >= maximum:
            if not self._truncated:
                self._truncated = True
                obs.get().incr("enum.lazy.truncated")
            return None
        while len(self._buffer) <= index and not self._exhausted:
            item = next(self._stream, None)
            if item is None:
                self._exhausted = True
            else:
                self._buffer.append(item)
        if index < len(self._buffer):
            return self._buffer[index]
        return None


#: What :func:`descending_products` accepts per slot: a materialised
#: factor list or a shared lazy stream view.
FactorLike = Union[Factor[T], LazyDescendingList[T]]


def _factor_item(
    factor: "FactorLike[T]", index: int
) -> Optional[Tuple[T, float]]:
    """Index into either a sequence factor or a LazyDescendingList."""
    if isinstance(factor, LazyDescendingList):
        return factor.get(index)
    if index < len(factor):
        return factor[index]
    return None


def _validate_factor(factor: Factor) -> None:
    if not factor:
        raise ValueError("factors must be non-empty")
    previous = None
    for _, probability in factor:
        if probability < 0:
            raise ValueError("factor probabilities must be non-negative")
        if previous is not None and probability > previous + 1e-12:
            raise ValueError("factor lists must be sorted descending")
        previous = probability


def descending_products(
    factors: "Sequence[FactorLike[T]]",
    validate: bool = False,
) -> Iterator[Tuple[Tuple[T, ...], float]]:
    """Enumerate the product of sorted factors in decreasing order.

    Yields ``(values, product_probability)``.  With ``k`` factors, the
    heap frontier grows by at most ``k`` entries per pop.

    >>> letters = [("a", 0.7), ("b", 0.3)]
    >>> digits = [("1", 0.9), ("2", 0.1)]
    >>> [(v, round(p, 2)) for v, p in descending_products([letters, digits])]
    [(('a', '1'), 0.63), (('b', '1'), 0.27), (('a', '2'), 0.07), (('b', '2'), 0.03)]
    """
    if validate:
        for factor in factors:
            if not isinstance(factor, LazyDescendingList):
                _validate_factor(factor)
    if not factors:
        yield (), 1.0
        return

    def probability_of(indices: Tuple[int, ...]) -> float:
        product = 1.0
        for factor, index in zip(factors, indices):
            item = _factor_item(factor, index)
            assert item is not None
            product *= item[1]
        return product

    start = tuple(0 for _ in factors)
    if any(_factor_item(factor, 0) is None for factor in factors):
        return
    # Max-heap via negated probability; tie-break on the index vector to
    # keep the enumeration deterministic.
    heap: List[Tuple[float, Tuple[int, ...]]] = [
        (-probability_of(start), start)
    ]
    # The backend is pinned at generator start: enumeration sweeps run
    # entirely inside one telemetry session (or none at all).
    telemetry = obs.get()
    count = len(factors)
    while heap:
        if telemetry.enabled:
            telemetry.incr("enum.products.pops")
        negative_probability, indices = heapq.heappop(heap)
        popped = [
            _factor_item(factor, index)
            for factor, index in zip(factors, indices)
        ]
        assert all(item is not None for item in popped)
        values = tuple(item[0] for item in popped if item is not None)
        yield values, -negative_probability
        # Canonical-parent successor rule: ``v + e_j`` is generated only
        # by the parent whose coordinates after ``j`` are all zero, i.e.
        # only positions at or after the rightmost non-zero coordinate
        # advance.  Every lattice cell still enters the heap exactly
        # once — but from a single parent, so the per-guess seen-set
        # (whose memory grew with guesses emitted) is gone, and pops
        # push at most ``k - rightmost`` successors instead of ``k``.
        rightmost = 0
        for position in range(count - 1, -1, -1):
            if indices[position]:
                rightmost = position
                break
        for position in range(rightmost, count):
            successor_index = indices[position] + 1
            if _factor_item(factors[position], successor_index) is None:
                continue
            successor = (
                indices[:position]
                + (successor_index,)
                + indices[position + 1:]
            )
            heapq.heappush(
                heap, (-probability_of(successor), successor)
            )


def merge_weighted_descending(
    streams: Iterable[Tuple[float, Iterator[Tuple[T, float]]]],
) -> Iterator[Tuple[T, float]]:
    """Merge descending ``(item, prob)`` streams scaled by outer weights.

    Each input is ``(weight, iterator)``; the merged stream yields
    ``(item, weight * prob)`` in globally decreasing order.  Streams
    with zero weight are skipped entirely.

    >>> a = iter([("x", 1.0), ("y", 0.5)])
    >>> b = iter([("z", 0.9)])
    >>> list(merge_weighted_descending([(0.5, a), (1.0, b)]))
    [('z', 0.9), ('x', 0.5), ('y', 0.25)]
    """
    heap: List[Tuple[float, int, T, Iterator[Tuple[T, float]], float]] = []
    counter = itertools.count()  # tie-breaker: insertion order
    for weight, stream in streams:
        if weight <= 0:
            continue
        first = next(stream, None)
        if first is None:
            continue
        item, probability = first
        heapq.heappush(
            heap, (-weight * probability, next(counter), item, stream, weight)
        )
    telemetry = obs.get()
    while heap:
        negative_probability, _, item, stream, weight = heapq.heappop(heap)
        if telemetry.enabled:
            telemetry.incr("enum.merge.yields")
        yield item, -negative_probability
        following = next(stream, None)
        if following is not None:
            next_item, probability = following
            heapq.heappush(
                heap,
                (-weight * probability, next(counter), next_item, stream, weight),
            )


def deduplicate_guesses(
    guesses: Iterator[Tuple[str, float]],
    key: Callable[[str], str] = lambda s: s,
    max_seen: Optional[int] = None,
) -> Iterator[Tuple[str, float]]:
    """Drop repeated surface strings, keeping the first (most probable).

    Distinct derivations occasionally produce the same password; a
    cracking session tries each string once, so enumeration-based guess
    numbers must deduplicate.

    The seen-set otherwise grows with every distinct guess; 10^7-scale
    sessions can bound it with ``max_seen``.  Once full, *known*
    duplicates are still dropped but new markers are no longer
    recorded, so repeats of guesses first seen after the cap can leak
    through — best-effort dedup, flagged once via
    ``enum.dedup.seen_capped``.
    """
    if max_seen is not None and max_seen < 1:
        raise ValueError("max_seen must be >= 1")
    seen: Set[str] = set()
    capped = False
    for guess, probability in guesses:
        marker = key(guess)
        if marker in seen:
            continue
        if max_seen is None or len(seen) < max_seen:
            seen.add(marker)
        elif not capped:
            capped = True
            obs.get().incr("enum.dedup.seen_capped")
        yield guess, probability
