"""Cracking curves and guess-number scatter data (paper Fig. 10).

Probabilistic meters are "essentially password cracking tools" (paper
footnote 6).  This module turns a guess stream into the two standard
evaluation artefacts:

* a **cracking curve** — fraction of the (weighted) test set recovered
  as a function of the number of guesses tried;
* a **guess-number scatter** — per test password, the ideal meter's
  rank against a model's guess number (each point of Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datasets.corpus import PasswordCorpus
from repro.meters.base import Meter
from repro.metrics.guessnumber import MonteCarloEstimator


@dataclass(frozen=True)
class CrackPoint:
    """One (guesses tried, fraction cracked) point."""

    guesses: int
    cracked_fraction: float


def cracking_curve(guesses: Iterator[Tuple[str, float]],
                   test_corpus: PasswordCorpus,
                   checkpoints: Sequence[int]) -> List[CrackPoint]:
    """Fraction of test entries (with multiplicity) cracked per horizon.

    ``guesses`` is any descending guess stream — the attack engine's
    :class:`~repro.attacks.engine.GuessStream` (use a
    :class:`~repro.attacks.engine.Beam` for deep horizons), a baseline
    meter's ``iter_guesses()``, or a corpus head.  Duplicate guesses in
    the stream count once, as in a real session.  If the stream ends
    early, later checkpoints repeat the final value.  For horizons
    beyond what enumeration can materialize, extend the curve with
    :meth:`repro.attacks.masks.MaskSet.coverage_curve`.
    """
    if not checkpoints:
        raise ValueError("need at least one checkpoint")
    ordered = sorted(checkpoints)
    if ordered[0] < 1:
        raise ValueError("checkpoints must be positive")
    total = test_corpus.total
    if total == 0:
        raise ValueError("empty test corpus")
    cracked = 0
    rank = 0
    seen = set()
    points: List[CrackPoint] = []
    remaining = list(ordered)
    for guess, _ in guesses:
        if guess in seen:
            continue
        seen.add(guess)
        rank += 1
        cracked += test_corpus.count(guess)
        while remaining and rank == remaining[0]:
            points.append(CrackPoint(remaining.pop(0), cracked / total))
        if not remaining:
            break
    for checkpoint in remaining:
        points.append(CrackPoint(checkpoint, cracked / total))
    return points


@dataclass(frozen=True)
class ScatterPoint:
    """One password's (ideal rank, model guess number) pair (Fig. 10)."""

    password: str
    ideal_rank: int
    model_guess_number: float

    @property
    def log_error(self) -> float:
        """|log10(model) - log10(ideal)| — distance from the diagonal."""
        import math
        if (
            not math.isfinite(self.model_guess_number)
            or self.model_guess_number <= 0
        ):
            return math.inf
        return abs(
            math.log10(self.model_guess_number)
            - math.log10(self.ideal_rank)
        )


def guess_number_scatter(estimator: MonteCarloEstimator, meter: Meter,
                         test_corpus: PasswordCorpus,
                         max_rank: Optional[int] = None
                         ) -> List[ScatterPoint]:
    """Fig.-10 scatter data: ideal rank vs model guess number.

    Args:
        estimator: a :class:`~repro.metrics.guessnumber.MonteCarloEstimator`
            built from ``meter``.
        meter: the probabilistic meter being assessed.
        test_corpus: supplies the ideal ranking (by popularity).
        max_rank: keep only the top-``max_rank`` ideal passwords.
    """
    ranked = test_corpus.most_common(max_rank)
    # One batched probability pass (fuzzyPSM answers it through its
    # parse cache), then map each score to a guess number.
    probabilities = meter.probabilities(
        password for password, _ in ranked
    )
    points: List[ScatterPoint] = []
    for rank, ((password, _), probability) in enumerate(
        zip(ranked, probabilities), start=1
    ):
        points.append(
            ScatterPoint(
                password=password,
                ideal_rank=rank,
                model_guess_number=estimator.guess_number(probability),
            )
        )
    return points


def scatter_accuracy(points: Sequence[ScatterPoint]) -> float:
    """Mean log10 distance from the diagonal (lower = better meter).

    Infinite points (passwords the model cannot derive) are excluded;
    use :func:`underivable_fraction` to report them separately.
    """
    import math
    finite = [p.log_error for p in points if math.isfinite(p.log_error)]
    if not finite:
        raise ValueError("no finite scatter points")
    return sum(finite) / len(finite)


def underivable_fraction(points: Sequence[ScatterPoint]) -> float:
    """Fraction of test passwords the model assigns probability 0."""
    import math
    if not points:
        raise ValueError("no scatter points")
    infinite = sum(
        1 for p in points if not math.isfinite(p.model_guess_number)
    )
    return infinite / len(points)
