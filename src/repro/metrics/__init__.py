"""Evaluation machinery: rank correlations, guess numbers, enumeration.

* :mod:`~repro.metrics.rank` — Spearman rho and Kendall tau-b with the
  tie handling the paper specifies (Sec. II-C).
* :mod:`~repro.metrics.curves` — the top-k correlation curves plotted
  in Figs. 9 and 13.
* :mod:`~repro.metrics.enumeration` — lazy descending-probability
  enumeration over factored models (Weir-style "next" function),
  powering guess generation for the probabilistic meters.
* :mod:`~repro.metrics.guessnumber` — exact (enumeration) and
  Monte-Carlo (Dell'Amico & Filippone, CCS'15) guess numbers.
* :mod:`~repro.metrics.unusable` — un-usable guess counting (Table III).
"""

from repro.metrics.rank import spearman_rho, kendall_tau, rankdata
from repro.metrics.curves import correlation_curve, CurvePoint
from repro.metrics.enumeration import (
    descending_products,
    merge_weighted_descending,
    deduplicate_guesses,
    LazyDescendingList,
)
from repro.metrics.guessnumber import (
    MonteCarloEstimator,
    guess_numbers_by_enumeration,
)
from repro.metrics.unusable import count_unusable_guesses
from repro.metrics.cracking import (
    CrackPoint,
    ScatterPoint,
    cracking_curve,
    guess_number_scatter,
    scatter_accuracy,
    underivable_fraction,
)
from repro.metrics.guesswork import (
    GuessingProfile,
    alpha_guesswork,
    alpha_work_factor,
    beta_success_rate,
    compare_profiles,
    effective_beta_bits,
    effective_guesswork_bits,
    guessing_profile,
    min_entropy,
    shannon_entropy,
)

__all__ = [
    "GuessingProfile",
    "alpha_guesswork",
    "alpha_work_factor",
    "beta_success_rate",
    "compare_profiles",
    "effective_beta_bits",
    "effective_guesswork_bits",
    "guessing_profile",
    "min_entropy",
    "shannon_entropy",
    "CrackPoint",
    "ScatterPoint",
    "cracking_curve",
    "guess_number_scatter",
    "scatter_accuracy",
    "underivable_fraction",
    "spearman_rho",
    "kendall_tau",
    "rankdata",
    "correlation_curve",
    "CurvePoint",
    "descending_products",
    "merge_weighted_descending",
    "deduplicate_guesses",
    "LazyDescendingList",
    "MonteCarloEstimator",
    "guess_numbers_by_enumeration",
    "count_unusable_guesses",
]
