"""Published aggregates of the paper's 442-participant survey.

Numbers quoted in the paper's text are encoded exactly; a few bar
heights were published only graphically (Figs. 5-7), and those entries
are flagged in ``ESTIMATED_FIELDS`` — they preserve the paper's stated
*ordering* (e.g. "concatenation takes the lead", "digits go at the end,
middle, beginning in decreasing order of likelihood").

All tables map answer -> fraction of respondents.  Multiple-choice
questions (marked) do not sum to 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

#: Fig. 2 — "What will you do when requested to create a password for a
#: new email account?"  The paper states: 77.38% reuse or modify, and
#: 14.48% build an entirely new password; the reuse/modify split is
#: derived from the stated comparisons with Das et al. (see below).
CREATION_STRATEGY: Dict[str, float] = {
    "reuse an existing password": 0.3680,
    "modify an existing password": 0.4058,
    "create an entirely new password": 0.1448,
    "other / no answer": 0.0814,
}

#: Fig. 2 of Das et al. (NDSS'14), the English-user baseline the paper
#: compares against: 77% reuse-or-modify, 6.2% more direct reuse than
#: Chinese users, 14.86% more brand-new passwords.
DAS_2014_CREATION_STRATEGY: Dict[str, float] = {
    "reuse an existing password": 0.4300,
    "modify an existing password": 0.3400,
    "create an entirely new password": 0.2934,
}

#: Fig. 3 — similarity of the new password to existing ones.
SIMILARITY: Dict[str, float] = {
    "the same or very similar": 0.6177,
    "similar": 0.2000,
    "somewhat different": 0.1300,
    "completely different": 0.0523,
}

#: Fig. 4 — why users modify instead of reusing (multiple-choice).
MODIFY_REASONS: Dict[str, float] = {
    "increase security": 0.5100,
    "fulfill password policies": 0.4276,
    "improve memorability": 0.3258,
}

#: Fig. 5 — transformation rules used when modifying (multiple-choice);
#: concatenation leads, then capitalization and leet (paper text).
TRANSFORMATION_RULES: Dict[str, float] = {
    "concatenation (add digit/symbol at beginning/end)": 0.5520,
    "capitalization": 0.2780,
    "leet (a<->@, o<->0, ...)": 0.1890,
    "substring movement": 0.1240,
    "reverse": 0.0870,
    "add site-specific info": 0.0680,
}

#: Fig. 6 — where users place a required digit (multiple-choice).
DIGIT_PLACEMENT: Dict[str, float] = {
    "end": 0.6230,
    "middle": 0.2470,
    "beginning": 0.1910,
}

#: Fig. 7 — where users place a required symbol (multiple-choice).
SYMBOL_PLACEMENT: Dict[str, float] = {
    "end": 0.5340,
    "middle": 0.2710,
    "beginning": 0.1530,
}

#: Fig. 8 — where capitalization happens (multiple-choice).  47.96% and
#: 22.62% are quoted in the paper; English comparison: 44% / 6%.
CAPITALIZATION_PLACEMENT: Dict[str, float] = {
    "beginning of the password": 0.4796,
    "middle of the password": 0.1410,
    "end of the password": 0.0920,
    "never use capitalization": 0.2262,
}

#: Demographics quoted in Sec. III.
DEMOGRAPHICS: Dict[str, float] = {
    "male": 2 / 3,
    "age 18-34": 0.8055,
    "age 35+": 0.1567,
    "bachelor's degree or pursuing": 0.8055,
    "master's degree or pursuing": 0.4344,
}

#: Survey bookkeeping from Sec. III.
INVITATIONS_SENT = 983
EFFECTIVE_RESPONSES = 442

#: Fields whose exact values were published only as bar charts; the
#: encoded numbers preserve the paper's stated ordering and text.
ESTIMATED_FIELDS: Sequence[str] = (
    "TRANSFORMATION_RULES",
    "DIGIT_PLACEMENT",
    "SYMBOL_PLACEMENT",
    "SIMILARITY[somewhat different]",
    "CAPITALIZATION_PLACEMENT[middle/end]",
)


@dataclass(frozen=True)
class BehaviorModel:
    """The survey aggregates as a generative model of user behaviour.

    The synthetic corpus generator draws an *action* per registration
    (reuse / modify / new) and, for modifications, a transformation
    rule and a placement — all with the survey's probabilities.  The
    residual "other / no answer" mass is folded into reuse, the most
    conservative reading.
    """

    reuse: float = CREATION_STRATEGY["reuse an existing password"] + \
        CREATION_STRATEGY["other / no answer"]
    modify: float = CREATION_STRATEGY["modify an existing password"]
    new: float = CREATION_STRATEGY["create an entirely new password"]

    #: Relative weights of transformation rules when modifying; the
    #: survey was multiple-choice so these are normalised weights.
    rule_weights: Tuple[Tuple[str, float], ...] = (
        ("concatenate_digits", 0.40),
        ("concatenate_symbol", 0.15),
        ("capitalize", 0.21),
        ("leet", 0.14),
        ("reverse", 0.06),
        ("site_info", 0.04),
    )

    #: Placement distribution for concatenation (from Figs. 6-7,
    #: normalised): end, beginning, middle.
    placement_weights: Tuple[Tuple[str, float], ...] = (
        ("end", 0.60),
        ("beginning", 0.22),
        ("middle", 0.18),
    )

    def choose_action(self, rng: random.Random) -> str:
        """Draw ``reuse`` / ``modify`` / ``new`` per the survey."""
        roll = rng.random() * (self.reuse + self.modify + self.new)
        if roll < self.reuse:
            return "reuse"
        if roll < self.reuse + self.modify:
            return "modify"
        return "new"

    def choose_rule(self, rng: random.Random) -> str:
        total = sum(weight for _, weight in self.rule_weights)
        roll = rng.random() * total
        cumulative = 0.0
        for rule, weight in self.rule_weights:
            cumulative += weight
            if roll < cumulative:
                return rule
        return self.rule_weights[-1][0]

    def choose_placement(self, rng: random.Random) -> str:
        total = sum(weight for _, weight in self.placement_weights)
        roll = rng.random() * total
        cumulative = 0.0
        for placement, weight in self.placement_weights:
            cumulative += weight
            if roll < cumulative:
                return placement
        return self.placement_weights[-1][0]
