"""The paper's user survey (Sec. III, Figs. 2-8).

Only aggregated percentages were published; :mod:`~repro.survey.data`
encodes them verbatim, :mod:`~repro.survey.analysis` reproduces the
figures' numbers and the comparisons with Das et al. (NDSS'14), and
:class:`~repro.survey.data.BehaviorModel` packages the same numbers as
a generative model of password-creation behaviour — which is exactly
what the synthetic corpus generator samples from, so the reproduction's
data is grounded in the paper's own measurements.
"""

from repro.survey.data import (
    BehaviorModel,
    CREATION_STRATEGY,
    SIMILARITY,
    MODIFY_REASONS,
    TRANSFORMATION_RULES,
    DIGIT_PLACEMENT,
    SYMBOL_PLACEMENT,
    CAPITALIZATION_PLACEMENT,
    DEMOGRAPHICS,
    DAS_2014_CREATION_STRATEGY,
)
from repro.survey.analysis import (
    figure2_reuse_rate,
    figure3_similar_or_closer_rate,
    figure5_top_rule,
    compare_with_das,
    survey_report,
)

__all__ = [
    "BehaviorModel",
    "CREATION_STRATEGY",
    "SIMILARITY",
    "MODIFY_REASONS",
    "TRANSFORMATION_RULES",
    "DIGIT_PLACEMENT",
    "SYMBOL_PLACEMENT",
    "CAPITALIZATION_PLACEMENT",
    "DEMOGRAPHICS",
    "DAS_2014_CREATION_STRATEGY",
    "figure2_reuse_rate",
    "figure3_similar_or_closer_rate",
    "figure5_top_rule",
    "compare_with_das",
    "survey_report",
]
