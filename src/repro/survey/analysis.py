"""Reproduction of the survey figures' headline numbers (Figs. 2-8).

Each function returns the quantity the paper's prose highlights, so the
survey benchmark can assert them against the text (e.g. "77.38% of
users would reuse or simply modify an existing password").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.survey import data


def figure2_reuse_rate() -> float:
    """Fraction who reuse *or* modify an existing password (77.38%)."""
    return (
        data.CREATION_STRATEGY["reuse an existing password"]
        + data.CREATION_STRATEGY["modify an existing password"]
    )


def figure3_similar_or_closer_rate() -> float:
    """Fraction whose new password is at least 'similar' (>= 80%)."""
    return (
        data.SIMILARITY["the same or very similar"]
        + data.SIMILARITY["similar"]
    )


def figure4_top_reason() -> Tuple[str, float]:
    """The most common modification reason (increase security, 51%)."""
    reason = max(data.MODIFY_REASONS, key=data.MODIFY_REASONS.get)
    return reason, data.MODIFY_REASONS[reason]


def figure5_top_rule() -> Tuple[str, float]:
    """The most popular transformation rule (concatenation)."""
    rule = max(data.TRANSFORMATION_RULES, key=data.TRANSFORMATION_RULES.get)
    return rule, data.TRANSFORMATION_RULES[rule]


def figure6_placement_order() -> List[str]:
    """Digit placements in decreasing popularity (end, middle, begin)."""
    return sorted(
        data.DIGIT_PLACEMENT, key=data.DIGIT_PLACEMENT.get, reverse=True
    )


def figure8_capitalize_first_rate() -> float:
    """Fraction capitalizing at the beginning (47.96%)."""
    return data.CAPITALIZATION_PLACEMENT["beginning of the password"]


def compare_with_das() -> Dict[str, float]:
    """The paper's quantitative comparisons with Das et al. (NDSS'14).

    Returns the three deltas the paper calls out: overall agreement on
    the reuse-or-modify rate, the direct-reuse gap (-6.2 points for
    Chinese users) and the brand-new-password gap (+14.86 points for
    English users).
    """
    ours = data.CREATION_STRATEGY
    das = data.DAS_2014_CREATION_STRATEGY
    return {
        "reuse_or_modify_chinese": figure2_reuse_rate(),
        "reuse_or_modify_english": das["reuse an existing password"]
        + das["modify an existing password"],
        "direct_reuse_gap": ours["reuse an existing password"]
        - das["reuse an existing password"],
        "new_password_gap": das["create an entirely new password"]
        - ours["create an entirely new password"],
    }


def survey_report() -> List[str]:
    """The figures' headline numbers, one line each (for the bench)."""
    lines = [
        f"Fig 2  reuse-or-modify rate: {figure2_reuse_rate():.2%}",
        f"Fig 3  at-least-similar rate: {figure3_similar_or_closer_rate():.2%}",
        "Fig 4  top modify reason: {} ({:.2%})".format(*figure4_top_reason()),
        "Fig 5  top transformation rule: {} ({:.2%})".format(
            *figure5_top_rule()
        ),
        f"Fig 6  digit placement order: {' > '.join(figure6_placement_order())}",
        f"Fig 8  capitalize-first rate: {figure8_capitalize_first_rate():.2%}",
        "Fig 8  never-capitalize rate: "
        f"{data.CAPITALIZATION_PLACEMENT['never use capitalization']:.2%}",
    ]
    return lines
