"""Consistency checks between the documentation and the code.

A reproduction repo lives or dies by its docs staying true: DESIGN.md
must reference bench files and modules that exist, README's layout
must match the package, and every public export must resolve.
"""

import importlib
import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(name):
    with open(os.path.join(REPO_ROOT, name), encoding="utf-8") as handle:
        return handle.read()


class TestDesignDocument:
    @pytest.fixture(scope="class")
    def design(self):
        return _read("DESIGN.md")

    def test_referenced_bench_files_exist(self, design):
        for match in re.finditer(r"benchmarks/(test_\w+\.py)", design):
            path = os.path.join(REPO_ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), match.group(0)

    def test_referenced_modules_importable(self, design):
        for match in re.finditer(r"`(repro(?:\.\w+)+)`", design):
            module = match.group(1)
            # Strip attribute-style references like repro.core.meter.
            try:
                importlib.import_module(module)
            except ModuleNotFoundError:
                parent, _, attr = module.rpartition(".")
                imported = importlib.import_module(parent)
                assert hasattr(imported, attr), module

    def test_every_table_and_figure_indexed(self, design):
        # Tables I-XI and Figs 2-13 all appear in the experiment index.
        for table in ("Table I", "Table II", "Table III", "Table VII",
                      "Table VIII", "Table X", "Table XI"):
            assert table in design
        normalised = design.replace("Fig. ", "Fig ").replace(
            "Figs ", "Fig "
        )
        for figure in ("Fig 9", "Fig 10", "Fig 12", "Fig 13"):
            assert figure in normalised, figure

    def test_no_wrong_paper_marker(self, design):
        # Per the task contract, a title mismatch would be flagged at
        # the top of DESIGN.md; assert we confirmed the match instead.
        head = design[:600].lower()
        assert "matches the title/venue/authors" in head
        assert "mismatch" not in head


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return _read("README.md")

    def test_layout_paths_exist(self, readme):
        block = readme.split("```")[3]  # the architecture tree
        for line in block.splitlines():
            stripped = line.strip()
            if stripped.endswith(".py") and "/" not in stripped:
                continue
            match = re.match(r"^(src/repro/[\w/]+\.?p?y?)", stripped)
            if match:
                assert os.path.exists(
                    os.path.join(REPO_ROOT, match.group(1))
                ), match.group(1)

    def test_example_scripts_exist(self, readme):
        for match in re.finditer(r"`(\w+\.py)`", readme):
            name = match.group(1)
            candidate = os.path.join(REPO_ROOT, "examples", name)
            inside_package = any(
                name in files
                for _, _, files in os.walk(
                    os.path.join(REPO_ROOT, "src")
                )
            )
            assert os.path.exists(candidate) or inside_package, name

    def test_cli_commands_documented_and_real(self, readme):
        from repro.cli import _HANDLERS
        for command in ("survey", "generate", "stats", "train",
                        "measure", "guess", "experiment", "coach",
                        "attack", "profile"):
            assert command in _HANDLERS
            assert f"repro {command}" in readme, command


class TestExperimentsDocument:
    @pytest.fixture(scope="class")
    def experiments(self):
        return _read("EXPERIMENTS.md")

    def test_referenced_benches_exist(self, experiments):
        for match in re.finditer(r"`(test_\w+\.py)`", experiments):
            path = os.path.join(REPO_ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), match.group(1)

    def test_every_bench_file_documented(self, experiments):
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("test_") and name.endswith(".py"):
                assert name in experiments or name.replace(
                    ".py", ""
                ) in experiments, name


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        for module_name in ("repro.core", "repro.meters",
                            "repro.metrics", "repro.datasets",
                            "repro.experiments", "repro.attacks"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module_name, name)
