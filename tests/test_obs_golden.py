"""Golden telemetry values for a fixed tiny corpus.

Every count below is derived by hand from the parse procedure (paper
Sec. IV-C): the base dictionary is two words, the probe passwords are
chosen so each exercises exactly one known path.  If a probe moves or
a parse changes shape, these tests name the drifted counter.
"""

from __future__ import annotations

from repro import obs
from repro.core.meter import FuzzyPSM
from repro.core.parser import FuzzyParser
from repro.core.training import build_base_trie, train_grammar
from repro.obs.report import build_report

GOLDEN_BASE = ["password", "dragon"]


def golden_parser() -> FuzzyParser:
    parser = FuzzyParser(build_base_trie(GOLDEN_BASE))
    # The compiled matcher is built lazily on the first parse; trigger
    # it here so trie-compilation probes stay out of the sessions below.
    parser.parse("x")
    return parser


class TestParserGolden:
    def test_exact_counter_inventory(self):
        parser = golden_parser()
        with obs.session() as telemetry:
            parser.parse("password123")  # trie hit + digit fallback
            parser.parse("Dragon99")     # capitalized trie hit + digits
            parser.parse("p@ssword")     # trie hit via one leet toggle
            parser.parse("xyz")          # pure PCFG fallback
            counters = telemetry.snapshot()["counters"]
        # Zero-valued counters are never emitted (report readers
        # default missing probes to 0), so the inventory is exact:
        # no reverse or all-caps rule fired on these four parses.
        assert counters == {
            "parser.parse": 4,
            "parser.match.attempts": 6,
            "parser.segment.trie_hit": 3,
            "parser.segment.fallback": 3,
            "parser.rule.capitalization": 1,
            "parser.rule.leet": 1,
        }

    def test_segment_histogram(self):
        parser = golden_parser()
        with obs.session() as telemetry:
            parser.parse("password123")  # 2 segments
            parser.parse("Dragon99")     # 2 segments
            parser.parse("p@ssword")     # 1 segment
            parser.parse("xyz")          # 1 segment
            histogram = telemetry.histogram("parser.segments")
        assert histogram is not None
        assert histogram.count == 4
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 2.0
        # 1-segment and 2-segment parses land in distinct buckets.
        assert [count for _, count in histogram.nonzero_buckets()] == [2, 2]

    def test_leet_counts_toggles_not_segments(self):
        parser = golden_parser()
        with obs.session() as telemetry:
            parser.parse("p@$$word")     # three toggles, one segment
            counters = telemetry.snapshot()["counters"]
        assert counters["parser.rule.leet"] == 3
        assert counters["parser.segment.trie_hit"] == 1

    def test_empty_password_is_a_parse_with_no_segments(self):
        parser = golden_parser()
        with obs.session() as telemetry:
            parser.parse("")
            counters = telemetry.snapshot()["counters"]
        assert counters["parser.parse"] == 1
        assert counters.get("parser.match.attempts", 0) == 0


class TestCacheGolden:
    def test_hit_miss_evict_sequence(self):
        parser = FuzzyParser(build_base_trie(GOLDEN_BASE),
                             parse_cache_size=2)
        parser.parse("x")
        with obs.session() as telemetry:
            parser.parse_cached("password")  # miss
            parser.parse_cached("password")  # hit
            parser.parse_cached("dragon1")   # miss
            parser.parse_cached("123456")    # miss, evicts "password"
            parser.parse_cached("password")  # miss again, evicts "dragon1"
            counters = telemetry.snapshot()["counters"]
        assert counters["parser.cache.hit"] == 1
        assert counters["parser.cache.miss"] == 4
        assert counters["parser.cache.evict"] == 2
        # Cache hits are not parses: only the misses did parse work.
        assert counters["parser.parse"] == 4


class TestMeterGolden:
    def test_batch_counters(self):
        meter = FuzzyPSM.train(
            GOLDEN_BASE, ["password1", "password1", "dragon99"]
        )
        meter.probability("x")  # pre-build the compiled matcher
        with obs.session() as telemetry:
            meter.probability_many(
                ["password1", "password1", "dragon99", ""]
            )
            counters = telemetry.snapshot()["counters"]
        assert counters["meter.batch.calls"] == 1
        assert counters["meter.batch.scores"] == 4
        assert counters["meter.batch.distinct"] == 3  # "" is memoised too
        assert counters["parser.cache.miss"] == 2     # "" never parses
        assert counters.get("parser.cache.hit", 0) == 0

    def test_report_derives_the_golden_rates(self):
        meter = FuzzyPSM.train(
            GOLDEN_BASE, ["password1", "password1", "dragon99"]
        )
        meter.probability("x")
        with obs.session() as telemetry:
            meter.probability_many(["password1", "dragon99"])
            meter.probability_many(["password1", "dragon99"])
            report = build_report(telemetry.snapshot())
        assert report["parse_cache"] == {
            "hits": 2, "misses": 2, "evictions": 0, "hit_rate": 0.5,
        }
        outcomes = report["parse_outcomes"]
        # "password1" -> trie hit + fallback; "dragon99" -> the same.
        assert outcomes["parses"] == 2
        assert outcomes["trie_hit"] == 2
        assert outcomes["fallback"] == 2
        assert outcomes["trie_hit_share"] == 0.5

    def test_scores_identical_with_and_without_telemetry(self):
        meter = FuzzyPSM.train(
            GOLDEN_BASE, ["password1", "password1", "dragon99"]
        )
        stream = ["password1", "Dr@gon99", "", "xyz123", "password1"]
        baseline = meter.probability_many(stream)
        with obs.session():
            instrumented = meter.probability_many(stream)
        assert instrumented == baseline


class TestTrainingGolden:
    def test_serial_training_counters(self):
        trie = build_base_trie(GOLDEN_BASE)
        with obs.session() as telemetry:
            train_grammar(["password1", ("dragon", 5), ""], trie)
            counters = telemetry.snapshot()["counters"]
            histogram = telemetry.histogram("train.serial.seconds")
        # Two distinct entries trained: the empty string is skipped and
        # multiplicity does not inflate the pass count.
        assert counters["train.passwords"] == 2
        assert histogram is not None
        assert histogram.count == 1
