"""Unit tests for the fuzzy longest-prefix-match parser (Sec. IV-C)."""

import pytest

from repro.core.parser import FuzzyParser, SegmentKind
from repro.core.trie import PrefixTrie


@pytest.fixture()
def parser():
    trie = PrefixTrie(["password", "p@ssword", "123qwe", "123456",
                       "dragon", "qwe"])
    return FuzzyParser(trie)


class TestPaperExamples:
    """The worked examples of Sec. IV-C."""

    def test_password123_single_transformless_parse(self, parser):
        # password123 not in B; parses as password + 123 (B8 B3).
        parse = parser.parse("password123")
        assert parse.structure == (8, 3)
        assert parse.segments[0].base == "password"
        assert parse.segments[0].kind is SegmentKind.DICTIONARY
        assert parse.segments[1].kind is SegmentKind.FALLBACK

    def test_Password123_capitalization(self, parser):
        parse = parser.parse("Password123")
        assert parse.segments[0].capitalized
        assert parse.transformation_count == 1

    def test_p_at_ssw0rd_leet_against_leet_base(self, parser):
        # p@ssword is itself in B, so p@ssw0rd parses with ONE leet op
        # (o -> 0), exactly as the paper describes.
        parse = parser.parse("p@ssw0rd")
        assert parse.segments[0].base == "p@ssword"
        assert parse.segments[0].toggled_offsets == (5,)
        assert parse.transformation_count == 1

    def test_123qwe123qwe_concatenation(self, parser):
        parse = parser.parse("123qwe123qwe")
        assert parse.structure == (6, 6)
        assert [seg.base for seg in parse.segments] == ["123qwe", "123qwe"]

    def test_tyxdqd123_unparseable_falls_back(self, parser):
        # No trie entry starts with "tyx": base structure B6 B3 via the
        # traditional PCFG treatment.
        parse = parser.parse("tyxdqd123")
        assert parse.structure == (6, 3)
        assert all(
            seg.kind is SegmentKind.FALLBACK for seg in parse.segments
        )
        assert not parse.uses_dictionary


class TestParsingMechanics:
    def test_parse_reassembles_surface(self, parser):
        for password in ("password123", "P@ssw0rd!", "xyz987", "Dragon5"):
            parse = parser.parse(password)
            assert parse.to_derivation().surface() == password

    def test_longest_prefix_preferred(self, parser):
        # "qwe" and "123qwe" both in trie; from offset 0 of "123qwe..."
        # the longest match wins.
        parse = parser.parse("123qwexx")
        assert parse.segments[0].base == "123qwe"

    def test_fallback_capitalization_recorded(self, parser):
        parse = parser.parse("Zebra123")
        assert parse.segments[0].base == "zebra"
        assert parse.segments[0].capitalized
        assert parse.segments[0].kind is SegmentKind.FALLBACK

    def test_fallback_runs_split_by_class(self, parser):
        parse = parser.parse("zz99!!")
        assert parse.structure == (2, 2, 2)
        kinds = {seg.kind for seg in parse.segments}
        assert kinds == {SegmentKind.FALLBACK}

    def test_empty_password(self, parser):
        parse = parser.parse("")
        assert parse.segments == ()
        assert parse.structure == ()

    def test_dictionary_flag(self, parser):
        assert parser.parse("password1").uses_dictionary
        assert not parser.parse("zzzzz").uses_dictionary

    def test_transform_flags_disabled(self):
        trie = PrefixTrie(["password"])
        no_cap = FuzzyParser(trie, allow_capitalization=False)
        parse = no_cap.parse("Password")
        # Without the capitalization rule the whole run is fallback.
        assert parse.segments[0].kind is SegmentKind.FALLBACK

    def test_mid_password_capitalization_allowed(self, parser):
        # Capitalization applies to the first letter of each *segment*.
        parse = parser.parse("123qweDragon")
        assert parse.segments[1].base == "dragon"
        assert parse.segments[1].capitalized
