"""Unit tests for benchmark-output formatting helpers."""

import pytest

from repro.experiments.reporting import (
    format_curves,
    format_percent,
    format_ranking,
    format_table,
)
from repro.experiments.runner import ExperimentResult, MeterCurve
from repro.experiments.scenarios import scenario
from repro.metrics.curves import CurvePoint


@pytest.fixture()
def result():
    return ExperimentResult(
        scenario=scenario("ideal-csdn"),
        curves=(
            MeterCurve("fuzzyPSM", (CurvePoint(10, 0.9), CurvePoint(50, 0.8))),
            MeterCurve("NIST", (CurvePoint(10, 0.1), CurvePoint(50, 0.2))),
        ),
        test_unique=50,
        metric_name="kendall",
    )


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.0743) == "7.43%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["short", 1], ["a-much-longer-name", 22]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        # Header and separator widths match the widest cell.
        assert len(lines[1]) == len(lines[0])

    def test_title(self):
        text = format_table(["a"], [["x"]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatCurves:
    def test_contains_meters_and_ks(self, result):
        text = format_curves(result)
        assert "fuzzyPSM" in text
        assert "NIST" in text
        assert "13(h)" in text
        lines = text.splitlines()
        assert lines[-1].startswith("50")

    def test_values_formatted_signed(self, result):
        text = format_curves(result)
        assert "+0.900" in text
        assert "+0.100" in text


class TestFormatRanking:
    def test_best_first(self, result):
        text = format_ranking(result)
        assert text.index("fuzzyPSM") < text.index("NIST")
        assert " > " in text

    def test_means_shown(self, result):
        assert "+0.850" in format_ranking(result)  # fuzzyPSM mean
