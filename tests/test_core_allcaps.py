"""Tests for the all-caps capitalization extension (limitation #2).

Sec. IV-C's limitations: "for capitalization, it only considers the
capitalization of the first letter of a base password segment."  The
extension is config-gated (``FuzzyPSMConfig(allow_allcaps=True)``);
off by default, the meter matches the published behaviour exactly.
"""

import random

import pytest

from repro.core import FuzzyPSM, FuzzyPSMConfig
from repro.core.grammar import DerivedSegment, FuzzyGrammar
from repro.core.parser import FuzzyParser
from repro.core.trie import PrefixTrie

BASE = ["password", "dragon", "iloveyou", "p@ssword", "sunshine"]
TRAINING = [
    "password", "password123", "PASSWORD", "DRAGON1", "iloveyou",
    "sunshine", "Password", "dragon",
]


@pytest.fixture(scope="module")
def allcaps_meter():
    return FuzzyPSM.train(
        BASE, TRAINING, config=FuzzyPSMConfig(allow_allcaps=True)
    )


@pytest.fixture(scope="module")
def plain_meter():
    return FuzzyPSM.train(BASE, TRAINING)


class TestDerivedSegmentAllCaps:
    def test_surface(self):
        assert DerivedSegment(
            "password", all_caps=True
        ).surface() == "PASSWORD"

    def test_non_letters_unchanged(self):
        assert DerivedSegment(
            "pass123", all_caps=True
        ).surface() == "PASS123"

    def test_leet_then_caps(self):
        # Toggle 'o' -> '0' first, then upper-case the letters.
        segment = DerivedSegment("password", toggled_offsets=(5,),
                                 all_caps=True)
        assert segment.surface() == "PASSW0RD"

    def test_mutual_exclusion_with_capitalized(self):
        with pytest.raises(ValueError):
            DerivedSegment("abc", capitalized=True,
                           all_caps=True).surface()

    def test_allcaps_then_reverse(self):
        segment = DerivedSegment("pass1", all_caps=True,
                                 reversed_word=True)
        assert segment.surface() == "1SSAP"


class TestParserAllCaps:
    def test_allcaps_word_recognised(self, allcaps_meter):
        parse = allcaps_meter.parse("PASSWORD")
        segment = parse.segments[0]
        assert segment.base == "password"
        assert segment.all_caps
        assert not segment.capitalized

    def test_first_letter_cap_still_preferred(self, allcaps_meter):
        parse = allcaps_meter.parse("Password")
        segment = parse.segments[0]
        assert segment.capitalized
        assert not segment.all_caps

    def test_lowercase_never_reads_as_allcaps(self, allcaps_meter):
        parse = allcaps_meter.parse("password")
        segment = parse.segments[0]
        assert not segment.all_caps

    def test_mixed_case_rejected(self):
        parser = FuzzyParser(PrefixTrie(["password"]),
                             allow_allcaps=True)
        parse = parser.parse("PAssWORD")
        # Not a valid all-caps surface: falls back to L/D/S runs.
        assert all(not seg.all_caps for seg in parse.segments)

    def test_allcaps_with_leet(self):
        parser = FuzzyParser(PrefixTrie(["password"]),
                             allow_allcaps=True)
        parse = parser.parse("PASSW0RD")
        segment = parse.segments[0]
        assert segment.base == "password"
        assert segment.all_caps
        assert segment.toggled_offsets == (5,)

    def test_flag_off_means_fallback(self, plain_meter):
        parse = plain_meter.parse("PASSWORD")
        assert all(not seg.all_caps for seg in parse.segments)

    def test_surface_round_trip(self, allcaps_meter):
        for password in ("PASSWORD", "DRAGON1", "Password123",
                         "SUNSHINE99"):
            parse = allcaps_meter.parse(password)
            assert parse.to_derivation().surface() == password


class TestGrammarAllCaps:
    def test_allcaps_counts_learned(self, allcaps_meter):
        grammar = allcaps_meter.grammar
        assert grammar.allcaps.count(True) >= 2   # PASSWORD, DRAGON(1)
        assert grammar.allcaps.count(False) > 0

    def test_rule_table_rows(self, allcaps_meter):
        rows = allcaps_meter.grammar.rule_table()
        allcaps_rows = [row for row in rows if row[0] == "AllCaps"]
        assert len(allcaps_rows) == 2
        assert sum(p for _, _, p in allcaps_rows) == pytest.approx(1.0)

    def test_no_rows_when_unused(self, plain_meter):
        rows = plain_meter.grammar.rule_table()
        assert all(row[0] != "AllCaps" for row in rows)

    def test_serialisation_round_trip(self, allcaps_meter):
        clone = FuzzyGrammar.from_dict(allcaps_meter.grammar.to_dict())
        derivation = allcaps_meter.parse("PASSWORD").to_derivation()
        assert clone.derivation_probability(
            derivation
        ) == allcaps_meter.grammar.derivation_probability(derivation)

    def test_legacy_document_compatible(self, plain_meter):
        document = plain_meter.grammar.to_dict()
        del document["allcaps"]
        clone = FuzzyGrammar.from_dict(document)
        assert clone.derivation_probability(
            plain_meter.parse("password").to_derivation()
        ) == plain_meter.probability("password")


class TestMeterAllCaps:
    def test_allcaps_measurable(self, allcaps_meter):
        assert allcaps_meter.probability("PASSWORD") > 0.0
        # A fresh all-caps variant of another trained word works too.
        assert allcaps_meter.probability("SUNSHINE") > 0.0

    def test_allcaps_weaker_than_plain(self, allcaps_meter):
        assert (
            allcaps_meter.probability("PASSWORD")
            < allcaps_meter.probability("password")
        )

    def test_flag_off_unreachable(self, plain_meter):
        assert plain_meter.probability("SUNSHINE") == 0.0

    def test_explain_mentions_allcaps(self, allcaps_meter):
        explanation = allcaps_meter.explain("PASSWORD")
        assert any(
            "all-caps" in description
            for _, description in explanation.segments
        )

    def test_guess_probabilities_match_measure(self, allcaps_meter):
        for guess, probability in allcaps_meter.iter_guesses(limit=80):
            assert allcaps_meter.probability(guess) == pytest.approx(
                probability, rel=1e-9
            ), guess

    def test_guesses_include_allcaps_variants(self, allcaps_meter):
        guesses = [
            guess for guess, _ in allcaps_meter.iter_guesses(limit=300)
        ]
        assert "PASSWORD" in guesses

    def test_sampling_consistent(self, allcaps_meter):
        rng = random.Random(7)
        for _ in range(60):
            password, probability = allcaps_meter.sample(rng)
            assert allcaps_meter.probability(
                password
            ) == pytest.approx(probability, rel=1e-12)

    def test_persistence_round_trip(self, allcaps_meter, tmp_path):
        from repro.persistence import load_meter, save_meter
        path = str(tmp_path / "allcaps.json")
        save_meter(allcaps_meter, path)
        loaded = load_meter(path)
        assert loaded.config.allow_allcaps
        assert loaded.probability(
            "PASSWORD"
        ) == allcaps_meter.probability("PASSWORD")


class TestCombinedExtensions:
    def test_reverse_and_allcaps_together(self):
        meter = FuzzyPSM.train(
            BASE, TRAINING + ["drowssap"],
            config=FuzzyPSMConfig(allow_reverse=True,
                                  allow_allcaps=True),
        )
        assert meter.probability("PASSWORD") > 0.0
        assert meter.probability("drowssap") > 0.0
        for guess, probability in meter.iter_guesses(limit=80):
            assert meter.probability(guess) == pytest.approx(
                probability, rel=1e-9
            ), guess
