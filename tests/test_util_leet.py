"""Unit tests for the top-6 leet substitution rules (Table VI)."""

import pytest

from repro.util.leet import (
    LEET_BY_LETTER,
    LEET_BY_SUBSTITUTE,
    LEET_PAIRS,
    LEET_RULE_NAMES,
    applicable_rules,
    apply_rules,
    deleet,
    leet_variants,
)


class TestTables:
    def test_exactly_six_rules(self):
        assert len(LEET_PAIRS) == 6
        assert LEET_RULE_NAMES == ("L1", "L2", "L3", "L4", "L5", "L6")

    def test_paper_pairs(self):
        # Table VI: a@ s$ o0 i1 e3 t7 in that priority order.
        assert LEET_BY_LETTER == {
            "a": "@", "s": "$", "o": "0", "i": "1", "e": "3", "t": "7",
        }

    def test_inverse_table_consistent(self):
        for letter, sub in LEET_BY_LETTER.items():
            assert LEET_BY_SUBSTITUTE[sub] == letter


class TestDeleet:
    def test_paper_example(self):
        base, rules = deleet("p@ssw0rd")
        assert base == "password"
        assert rules == frozenset({"L1", "L3"})

    def test_identity(self):
        base, rules = deleet("password")
        assert base == "password"
        assert rules == frozenset()

    def test_all_rules(self):
        base, rules = deleet("@$01 37")
        assert base == "asoi et"
        assert rules == frozenset({"L1", "L2", "L3", "L4", "L5", "L6"})

    def test_digits_that_are_substitutes(self):
        base, rules = deleet("1337")
        assert base == "ieet"
        assert rules == frozenset({"L4", "L5", "L6"})


class TestApply:
    def test_roundtrip(self):
        assert apply_rules("password", frozenset({"L1", "L3"})) == "p@ssw0rd"

    def test_applies_to_all_occurrences(self):
        assert apply_rules("sassy", frozenset({"L2"})) == "$a$$y"

    def test_no_rules_is_identity(self):
        assert apply_rules("password", frozenset()) == "password"


class TestApplicable:
    def test_rules_require_letter_presence(self):
        assert applicable_rules("xyz") == frozenset()
        assert applicable_rules("password") == frozenset(
            {"L1", "L2", "L3"}  # a, s, o (no i, no e, no t)
        )

    def test_variants_count(self):
        # "so" has two applicable rules -> 3 non-trivial variants.
        assert sorted(leet_variants("so")) == ["$0", "$o", "s0"]

    def test_variants_capped(self):
        variants = list(leet_variants("asoiet", max_variants=5))
        assert len(variants) == 5

    def test_variants_of_plain_word(self):
        assert list(leet_variants("xyz")) == []
