"""Unit tests for descending-product enumeration and merging."""

import itertools

import pytest

from repro import obs
from repro.metrics.enumeration import (
    LazyDescendingList,
    deduplicate_guesses,
    descending_products,
    merge_weighted_descending,
)


class TestDescendingProducts:
    def test_two_factor_example(self):
        letters = [("a", 0.7), ("b", 0.3)]
        digits = [("1", 0.9), ("2", 0.1)]
        result = list(descending_products([letters, digits]))
        values = [v for v, _ in result]
        assert values == [("a", "1"), ("b", "1"), ("a", "2"), ("b", "2")]

    def test_probabilities_descending(self):
        factors = [
            [("x", 0.5), ("y", 0.3), ("z", 0.2)],
            [("1", 0.6), ("2", 0.4)],
            [("!", 0.9), ("?", 0.1)],
        ]
        probs = [p for _, p in descending_products(factors)]
        assert probs == sorted(probs, reverse=True)
        assert len(probs) == 12

    def test_exhaustive_and_correct_products(self):
        factors = [
            [("a", 0.6), ("b", 0.4)],
            [("c", 0.8), ("d", 0.2)],
        ]
        result = dict(descending_products(factors))
        expected = {
            (x, y): px * py
            for (x, px), (y, py) in itertools.product(*factors)
        }
        assert result == pytest.approx(expected)

    def test_no_factors(self):
        assert list(descending_products([])) == [((), 1.0)]

    def test_empty_factor_yields_nothing(self):
        assert list(descending_products([[], [("a", 1.0)]])) == []

    def test_validation_rejects_unsorted(self):
        with pytest.raises(ValueError):
            list(
                descending_products(
                    [[("a", 0.1), ("b", 0.9)]], validate=True
                )
            )

    def test_validation_rejects_negative(self):
        with pytest.raises(ValueError):
            list(descending_products([[("a", -0.1)]], validate=True))

    def test_large_product_is_lazy(self):
        # 20 factors of 10 options each: 10^20 cells; taking 5 must be
        # instant and correct.
        factor = [(i, 1.0 / (i + 1)) for i in range(10)]
        stream = descending_products([factor] * 20)
        top = [next(stream) for _ in range(5)]
        assert top[0][0] == tuple([0] * 20)
        probs = [p for _, p in top]
        assert probs == sorted(probs, reverse=True)


class TestLazyList:
    def test_caches_and_shares(self):
        calls = []

        def stream():
            for i in range(3):
                calls.append(i)
                yield (i, 1.0 / (i + 1))

        lazy = LazyDescendingList(stream())
        assert lazy.get(0) == (0, 1.0)
        assert lazy.get(0) == (0, 1.0)
        assert calls == [0]
        assert lazy.get(2) == (2, pytest.approx(1 / 3))
        assert lazy.get(3) is None

    def test_products_over_lazy_lists(self):
        lazy = LazyDescendingList(iter([("a", 0.9), ("b", 0.1)]))
        result = list(descending_products([lazy, [("x", 1.0)]]))
        assert [v for v, _ in result] == [("a", "x"), ("b", "x")]


class TestMerge:
    def test_weighted_merge_order(self):
        a = iter([("x", 1.0), ("y", 0.5)])
        b = iter([("z", 0.9)])
        merged = list(merge_weighted_descending([(0.5, a), (1.0, b)]))
        assert merged == [("z", 0.9), ("x", 0.5), ("y", 0.25)]

    def test_zero_weight_skipped(self):
        a = iter([("x", 1.0)])
        merged = list(merge_weighted_descending([(0.0, a)]))
        assert merged == []

    def test_empty_streams(self):
        assert list(merge_weighted_descending([])) == []
        assert list(merge_weighted_descending([(1.0, iter([]))])) == []

    def test_merged_streams_globally_descending(self):
        streams = [
            (0.6, iter([("a", 1.0), ("b", 0.1)])),
            (0.4, iter([("c", 0.9), ("d", 0.5)])),
        ]
        probs = [p for _, p in merge_weighted_descending(streams)]
        assert probs == sorted(probs, reverse=True)


class TestDeduplicate:
    def test_keeps_first_occurrence(self):
        guesses = iter([("a", 0.5), ("b", 0.4), ("a", 0.3)])
        assert list(deduplicate_guesses(guesses)) == [
            ("a", 0.5), ("b", 0.4)
        ]

    def test_custom_key(self):
        guesses = iter([("Abc", 0.5), ("abc", 0.4)])
        result = list(deduplicate_guesses(guesses, key=str.lower))
        assert result == [("Abc", 0.5)]

    def test_max_seen_validation(self):
        with pytest.raises(ValueError):
            list(deduplicate_guesses(iter([]), max_seen=0))


class TestBoundedBuffers:
    """The 10^10-scale bounds: both enumeration-side memory growths
    (the lazy-list buffer and the dedup seen-set) are cappable, degrade
    best-effort, and announce the degradation through telemetry once.
    """

    def test_lazy_list_max_buffer_validation(self):
        with pytest.raises(ValueError):
            LazyDescendingList(iter([]), max_buffer=0)

    def test_lazy_list_truncates_at_bound(self):
        lazy = LazyDescendingList(
            ((i, 1.0 / (i + 1)) for i in itertools.count()),
            max_buffer=3,
        )
        assert lazy.get(2) == (2, pytest.approx(1 / 3))
        # Reads past the bound act like the stream ended there...
        assert lazy.get(3) is None
        assert lazy.get(100) is None
        # ...without disturbing the cached prefix.
        assert lazy.get(0) == (0, 1.0)

    def test_lazy_list_truncation_counted_once(self):
        with obs.session() as telemetry:
            lazy = LazyDescendingList(
                ((i, 0.5) for i in itertools.count()), max_buffer=2
            )
            assert lazy.get(5) is None
            assert lazy.get(7) is None
            counters = telemetry.snapshot()["counters"]
        assert counters["enum.lazy.truncated"] == 1

    def test_products_over_bounded_lazy_list(self):
        # A bounded lazy factor behaves exactly like the factor cut at
        # the bound: the infinite digit stream contributes 2 options.
        lazy = LazyDescendingList(
            ((str(i), 0.5 ** (i + 1)) for i in itertools.count()),
            max_buffer=2,
        )
        result = list(descending_products([[("a", 1.0)], lazy]))
        assert [v for v, _ in result] == [("a", "0"), ("a", "1")]

    def test_dedup_seen_cap_is_best_effort(self):
        guesses = iter([
            ("a", 0.9), ("b", 0.8),   # fill the 2-marker budget
            ("a", 0.7),               # known duplicate: still dropped
            ("c", 0.6),               # new marker, not recorded
            ("c", 0.5),               # ...so its repeat leaks through
        ])
        with obs.session() as telemetry:
            result = list(deduplicate_guesses(guesses, max_seen=2))
            counters = telemetry.snapshot()["counters"]
        assert result == [
            ("a", 0.9), ("b", 0.8), ("c", 0.6), ("c", 0.5),
        ]
        assert counters["enum.dedup.seen_capped"] == 1
