"""Shared fixtures: small deterministic corpora and trained meters."""

from __future__ import annotations

import random

import pytest

from repro.core import FuzzyPSM
from repro.datasets import PasswordCorpus, SyntheticEcosystem
from repro.meters import MarkovMeter, PCFGMeter, Smoothing

#: A base dictionary resembling the paper's running examples.
BASE_DICTIONARY = [
    "password", "p@ssword", "123456", "123qwe", "dragon", "iloveyou",
    "qwerty", "111111", "woaini", "5201314", "letmein", "monkey",
]

#: A training list exercising every transformation rule.
TRAINING_PASSWORDS = [
    "password", "password", "password123", "Password123", "p@ssw0rd",
    "123qwe123qwe", "123456", "123456", "123456", "iloveyou1",
    "Dragon", "qwerty12", "tyxdqd123", "woaini520", "5201314",
    "letmein!", "monkey99", "PASSWORD",
]


@pytest.fixture(scope="session")
def base_dictionary():
    return list(BASE_DICTIONARY)


@pytest.fixture(scope="session")
def training_passwords():
    return list(TRAINING_PASSWORDS)


@pytest.fixture(scope="session")
def fuzzy_meter(base_dictionary, training_passwords):
    return FuzzyPSM.train(base_dictionary, training_passwords)


@pytest.fixture(scope="session")
def pcfg_meter(training_passwords):
    return PCFGMeter.train(training_passwords)


@pytest.fixture(scope="session")
def markov_meter(training_passwords):
    return MarkovMeter.train(training_passwords, order=2)


@pytest.fixture(scope="session")
def ecosystem():
    return SyntheticEcosystem(seed=7, population=5_000)


@pytest.fixture(scope="session")
def small_corpus(ecosystem):
    return ecosystem.generate("csdn", total=3_000)


@pytest.fixture()
def rng():
    return random.Random(12345)
