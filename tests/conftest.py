"""Shared fixtures: small deterministic corpora and trained meters."""

from __future__ import annotations

import os
import random

import pytest

from repro.core import FuzzyPSM
from repro.datasets import PasswordCorpus, SyntheticEcosystem
from repro.meters import MarkovMeter, PCFGMeter, Smoothing

#: A base dictionary resembling the paper's running examples.
BASE_DICTIONARY = [
    "password", "p@ssword", "123456", "123qwe", "dragon", "iloveyou",
    "qwerty", "111111", "woaini", "5201314", "letmein", "monkey",
]

#: A training list exercising every transformation rule.
TRAINING_PASSWORDS = [
    "password", "password", "password123", "Password123", "p@ssw0rd",
    "123qwe123qwe", "123456", "123456", "123456", "iloveyou1",
    "Dragon", "qwerty12", "tyxdqd123", "woaini520", "5201314",
    "letmein!", "monkey99", "PASSWORD",
]


def _snapshot_segments() -> set:
    """Names of snapshot-plane segments currently in ``/dev/shm``."""
    from repro.core.shm import SEGMENT_PREFIX

    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX)
    }


@pytest.fixture(scope="session", autouse=True)
def _shm_leak_guard():
    """Fail the session if shared-memory segments leak (DESIGN.md §16).

    Every segment the suite creates must be unlinked by the code under
    test — pool teardown, server stop, epoch swaps — or still be owned
    by *this* process (those are swept by the ``atexit`` hook, which
    runs after this fixture).  Anything else in ``/dev/shm`` is a leak:
    a worker or server process died owning a segment nobody reclaims.
    """
    preexisting = _snapshot_segments()
    yield
    from repro.core import shm as shm_module

    leaked = sorted(
        name
        for name in _snapshot_segments() - preexisting
        if name not in shm_module._OWNED
    )
    assert not leaked, (
        f"leaked shared-memory segments (unowned, never unlinked): "
        f"{leaked}"
    )


@pytest.fixture(scope="session")
def base_dictionary():
    return list(BASE_DICTIONARY)


@pytest.fixture(scope="session")
def training_passwords():
    return list(TRAINING_PASSWORDS)


@pytest.fixture(scope="session")
def fuzzy_meter(base_dictionary, training_passwords):
    return FuzzyPSM.train(base_dictionary, training_passwords)


@pytest.fixture(scope="session")
def pcfg_meter(training_passwords):
    return PCFGMeter.train(training_passwords)


@pytest.fixture(scope="session")
def markov_meter(training_passwords):
    return MarkovMeter.train(training_passwords, order=2)


@pytest.fixture(scope="session")
def ecosystem():
    return SyntheticEcosystem(seed=7, population=5_000)


@pytest.fixture(scope="session")
def small_corpus(ecosystem):
    return ecosystem.generate("csdn", total=3_000)


@pytest.fixture()
def rng():
    return random.Random(12345)
