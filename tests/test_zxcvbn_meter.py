"""Integration tests for the ZxcvbnMeter facade."""

import pytest

from repro.meters.zxcvbn import ZxcvbnMeter


@pytest.fixture(scope="module")
def meter():
    return ZxcvbnMeter()


class TestEntropyOrdering:
    def test_common_password_weak(self, meter):
        assert meter.entropy("password") < meter.entropy("gbwkfq7c")

    def test_leet_adds_little(self, meter):
        # The paper's point: p@ssw0rd is barely stronger than password.
        assert meter.entropy("p@ssw0rd") < meter.entropy("gbwkfq7c")

    def test_keyboard_walks_weak(self, meter):
        assert meter.entropy("qwertyuiop") < meter.entropy("qzvkmwpxrt")

    def test_repeats_weak(self, meter):
        assert meter.entropy("aaaaaaaaaa") < meter.entropy("aqzvkmwpxr")

    def test_sequences_weak(self, meter):
        assert meter.entropy("abcdefghij") < meter.entropy("aqzvkmwpxr")

    def test_dates_weak(self, meter):
        assert meter.entropy("13051984") < meter.entropy("83620471")

    def test_length_helps_random_strings(self, meter):
        assert meter.entropy("kqzv") < meter.entropy("kqzvwmxrtp")

    def test_empty_password(self, meter):
        assert meter.entropy("") == 0.0


class TestMeterInterface:
    def test_probability_scale(self, meter):
        p = meter.probability("password")
        assert 0.0 < p <= 1.0
        assert p > meter.probability("zH8$kQ!2pVx9")

    def test_matches_exposed(self, meter):
        matches = meter.matches("password1984")
        assert any(m.pattern == "dictionary" for m in matches)
        assert any(m.pattern == "date" for m in matches)

    def test_match_sequence_covers_password(self, meter):
        result = meter.match_sequence("password1984")
        assert "".join(m.token for m in result.sequence) == "password1984"


class TestExtraDictionaries:
    def test_extra_words_lower_entropy(self):
        plain = ZxcvbnMeter()
        tuned = ZxcvbnMeter(
            extra_dictionaries={"site": ["zanzibar42x"]}
        )
        assert (
            tuned.entropy("zanzibar42x") < plain.entropy("zanzibar42x")
        )

    def test_extra_dictionary_ranks_by_order(self):
        tuned = ZxcvbnMeter(
            extra_dictionaries={"site": ["kwyjibo", "embiggen"]}
        )
        # Order defines rank: the first word is cheaper (log2(1) = 0
        # bits for rank 1, as in upstream zxcvbn).
        assert tuned.entropy("kwyjibo") < tuned.entropy("embiggen")
        assert tuned.entropy("embiggen") < ZxcvbnMeter().entropy("embiggen")


class TestPaperExamples:
    """The W3C/Yahoo-style misgradings that motivate the paper (Sec. I)."""

    def test_password1_not_much_stronger(self, meter):
        base = meter.entropy("password")
        assert meter.entropy("password1") < base + 8

    def test_password123_still_weak(self, meter):
        assert meter.entropy("password123") < meter.entropy("kqzvwmxrtpye")
