"""Unit tests for top-k correlation curves."""

import pytest

from repro.metrics.curves import (
    CurvePoint,
    correlation_curve,
    curve_summary,
    log_grid,
)
from repro.metrics.rank import spearman_rho


class TestLogGrid:
    def test_ends_at_n(self):
        assert log_grid(5000)[-1] == 5000

    def test_monotone_unique(self):
        grid = log_grid(100_000)
        assert grid == sorted(set(grid))

    def test_small_n(self):
        assert log_grid(12)[-1] == 12
        assert log_grid(12)[0] <= 12

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            log_grid(1)


class TestCorrelationCurve:
    def test_perfect_meter_scores_one_everywhere(self):
        ideal = [0.5, 0.3, 0.1, 0.05, 0.03, 0.02, 0.01, 0.005, 0.002, 0.001]
        points = correlation_curve(ideal, list(ideal), ks=[2, 5, 10])
        assert all(p.value == pytest.approx(1.0) for p in points)

    def test_reversed_meter_scores_minus_one(self):
        ideal = [float(10 - i) for i in range(10)]
        meter = [float(i) for i in range(10)]
        points = correlation_curve(ideal, meter, ks=[10])
        assert points[0].value == pytest.approx(-1.0)

    def test_prefix_order_is_by_ideal_rank(self):
        # Meter agrees on the top half, disagrees on the bottom half:
        # small-k correlation must exceed full-k correlation.
        ideal = [0.4, 0.3, 0.1, 0.05, 0.04, 0.03, 0.02, 0.01]
        meter = [0.4, 0.3, 0.1, 0.05, 0.01, 0.02, 0.03, 0.04]
        points = correlation_curve(ideal, meter, ks=[4, 8])
        assert points[0].value > points[1].value

    def test_k_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            correlation_curve([1.0, 0.5], [1.0, 0.5], ks=[3])
        with pytest.raises(ValueError):
            correlation_curve([1.0, 0.5], [1.0, 0.5], ks=[1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            correlation_curve([1.0], [1.0, 0.5])

    def test_alternate_metric(self):
        ideal = [0.5, 0.25, 0.125, 0.0625]
        meter = [0.4, 0.3, 0.2, 0.1]
        points = correlation_curve(
            ideal, meter, ks=[4], metric=spearman_rho
        )
        assert points[0].value == pytest.approx(1.0)

    def test_default_grid_used(self):
        ideal = [1.0 / (i + 1) for i in range(50)]
        points = correlation_curve(ideal, list(ideal))
        assert points[-1].k == 50


class TestSummary:
    def test_mean_and_final(self):
        points = [CurvePoint(10, 0.5), CurvePoint(100, 0.7)]
        mean, final = curve_summary(points)
        assert mean == pytest.approx(0.6)
        assert final == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            curve_summary([])
