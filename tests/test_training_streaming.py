"""Differential tests for the streaming/parallel training engine.

``train_grammar_streaming`` must be an *execution-strategy* change
only: whatever route a corpus takes — in-memory serial, streamed
chunked serial, or streamed through the persistent worker pool with
count-table deltas — the resulting grammar must serialise to the very
same bytes, because model files are compared byte-for-byte across PRs
(``test_persistence.TestDeterministicBytes``) and the count tables'
insertion order is part of that contract.
"""

from __future__ import annotations

import json
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import training
from repro.core.grammar import FuzzyGrammar
from repro.core.meter import FuzzyPSM
from repro.core.training import (
    build_base_trie,
    train_grammar,
    train_grammar_streaming,
)

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS


@pytest.fixture(scope="module")
def trie():
    return build_base_trie(BASE_DICTIONARY)


@pytest.fixture(scope="module")
def multicore():
    """Pretend the host has two cores: the CPU clamp must not silently
    reroute the pool-differential tests below through the serial path
    on a single-core CI machine.  (Module-scoped by hand because
    ``monkeypatch`` is function-scoped, which hypothesis rejects.)"""
    original = training._available_cpus
    training._available_cpus = lambda: 2
    yield
    training._available_cpus = original


def canonical(grammar: FuzzyGrammar) -> str:
    """The byte-identity probe: serialised JSON, insertion order kept."""
    return json.dumps(grammar.to_dict())


def chunked(entries, size):
    for start in range(0, len(entries), size):
        yield entries[start:start + size]


passwords = st.lists(
    st.text(
        alphabet=string.ascii_letters + string.digits + "!@#$%",
        min_size=1, max_size=12,
    ),
    min_size=1, max_size=40,
)
counts = st.integers(min_value=1, max_value=5)


class TestStreamedSerialEqualsInMemory:
    @given(passwords, st.integers(min_value=1, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_chunking_is_invisible(self, trie, pws, chunk_size):
        serial = train_grammar(pws, trie)
        streamed = train_grammar_streaming(chunked(pws, chunk_size), trie)
        assert canonical(streamed) == canonical(serial)

    @given(st.lists(st.tuples(
        st.text(alphabet=string.ascii_lowercase + "01!",
                min_size=1, max_size=10),
        counts,
    ), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_counted_entries_survive_chunking(self, trie, entries):
        serial = train_grammar(entries, trie)
        streamed = train_grammar_streaming(chunked(entries, 3), trie)
        assert canonical(streamed) == canonical(serial)

    def test_empty_stream(self, trie):
        assert train_grammar_streaming(iter([]), trie) == FuzzyGrammar()

    def test_empty_passwords_skipped_across_chunks(self, trie):
        entries = ["password1", "", "dragon99", ""]
        assert canonical(
            train_grammar_streaming(chunked(entries, 2), trie)
        ) == canonical(train_grammar(entries, trie))

    def test_empty_password_raises_without_skip(self, trie):
        with pytest.raises(ValueError, match="empty"):
            train_grammar_streaming(
                chunked(["password1", ""], 1), trie, skip_empty=False
            )


@pytest.mark.usefixtures("multicore")
class TestParallelEqualsSerial:
    """The delta pool must reproduce the serial bytes exactly."""

    def _both(self, trie, entries, chunk_size=4):
        serial = train_grammar(entries, trie)
        parallel = train_grammar_streaming(
            chunked(entries, chunk_size), trie,
            jobs=2, parallel_threshold=0,
        )
        return canonical(serial), canonical(parallel)

    def test_fixed_corpus(self, trie):
        entries = TRAINING_PASSWORDS + [
            ("password1", 7), ("Dr@gon99", 3), ("PASSWORD1", 2),
            ("1drowssap", 1), ("p@ssw0rd!", 4),
        ]
        serial, parallel = self._both(trie, entries)
        assert parallel == serial

    def test_duplicates_across_chunks(self, trie):
        # The same password in different chunks lands in different
        # worker deltas; merge order must still reproduce serial counts.
        entries = ["monkey12", "dragon99", "monkey12", "monkey12",
                   "dragon99", "shadow7!"] * 4
        serial, parallel = self._both(trie, entries, chunk_size=3)
        assert parallel == serial

    @given(passwords)
    @settings(max_examples=8, deadline=None)
    def test_random_corpora(self, trie, pws):
        serial, parallel = self._both(trie, pws)
        assert parallel == serial

    def test_in_memory_parallel_matches_too(self, trie):
        entries = TRAINING_PASSWORDS * 3
        serial = train_grammar(entries, trie)
        parallel = train_grammar(entries, trie, jobs=2,
                                 parallel_threshold=0)
        assert canonical(parallel) == canonical(serial)


class TestStreamingFallback:
    def test_small_stream_falls_back_to_serial(self, trie, monkeypatch):
        def boom(*_args, **_kwargs):
            raise AssertionError("pool started below the threshold")

        monkeypatch.setattr(training, "_available_cpus", lambda: 2)
        monkeypatch.setattr(training, "_train_streaming_parallel", boom)
        with obs.session() as telemetry:
            grammar = train_grammar_streaming(
                chunked(TRAINING_PASSWORDS, 4), trie, jobs=2
            )
            counters = telemetry.snapshot()["counters"]
        assert grammar == train_grammar(TRAINING_PASSWORDS, trie)
        assert counters["train.fallback.serial"] == 1
        assert counters["training.parallel.fallback"] == 1

    def test_in_memory_fallback_shares_the_counter(self, trie):
        with obs.session() as telemetry:
            train_grammar(TRAINING_PASSWORDS, trie, jobs=2)
            counters = telemetry.snapshot()["counters"]
        assert counters["training.parallel.fallback"] == 1

    def test_negative_jobs_rejected(self, trie):
        with pytest.raises(ValueError, match="non-negative"):
            train_grammar_streaming(iter([]), trie, jobs=-1)


class TestMeterEntryPoint:
    def test_train_streaming_equals_train(self):
        entries = TRAINING_PASSWORDS + [("trendpw99", 5)]
        in_memory = FuzzyPSM.train(BASE_DICTIONARY, entries)
        streamed = FuzzyPSM.train_streaming(
            BASE_DICTIONARY, chunked(entries, 3)
        )
        assert json.dumps(streamed.to_dict()) == json.dumps(
            in_memory.to_dict()
        )

    def test_streamed_meter_scores_and_updates(self):
        meter = FuzzyPSM.train_streaming(
            BASE_DICTIONARY, chunked(TRAINING_PASSWORDS, 5)
        )
        before = meter.probability("brandnew99")
        meter.update("brandnew99", count=5)
        assert meter.probability("brandnew99") > before
