"""Unit tests for the Zipf frequency-distribution analysis."""

import pytest

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.zipf import (
    ZipfFit,
    fit_zipf,
    frequency_spectrum,
    ideal_meter_coverage,
)


class TestFrequencySpectrum:
    def test_basic(self):
        corpus = PasswordCorpus(["a"] * 3 + ["b"] * 3 + ["c"])
        assert frequency_spectrum(corpus) == {1: 1, 3: 2}

    def test_sorted_keys(self):
        corpus = PasswordCorpus(["a"] * 5 + ["b"] * 2 + ["c"])
        assert list(frequency_spectrum(corpus)) == [1, 2, 5]

    def test_spectrum_accounts_for_everything(self):
        corpus = PasswordCorpus(["a"] * 4 + ["b"] * 2 + ["c", "d"])
        spectrum = frequency_spectrum(corpus)
        assert sum(
            frequency * count for frequency, count in spectrum.items()
        ) == corpus.total
        assert sum(spectrum.values()) == corpus.unique


class TestZipfFit:
    def _zipf_corpus(self, exponent=1.0, head=2000, ranks=300):
        return PasswordCorpus({
            f"pw{rank:04d}": max(1, round(head / rank ** exponent))
            for rank in range(1, ranks + 1)
        })

    def test_recovers_exponent(self):
        for true_s in (0.7, 1.0, 1.3):
            fit = fit_zipf(self._zipf_corpus(exponent=true_s))
            assert fit.exponent == pytest.approx(true_s, abs=0.1)

    def test_good_fit_on_zipf_data(self):
        fit = fit_zipf(self._zipf_corpus())
        assert fit.r_squared > 0.99

    def test_predicted_frequency(self):
        fit = fit_zipf(self._zipf_corpus(exponent=1.0, head=2000))
        assert fit.predicted_frequency(1) == pytest.approx(2000,
                                                           rel=0.25)
        assert fit.predicted_frequency(100) < fit.predicted_frequency(10)
        with pytest.raises(ValueError):
            fit.predicted_frequency(0)

    def test_singleton_tail_excluded(self):
        corpus = PasswordCorpus(
            {"a": 100, "b": 50, "c": 25, "d": 12, "e": 6, "f": 3,
             **{f"tail{i}": 1 for i in range(500)}}
        )
        fit = fit_zipf(corpus, min_frequency=2)
        assert fit.ranks_used == 6

    def test_too_few_ranks_rejected(self):
        with pytest.raises(ValueError):
            fit_zipf(PasswordCorpus({"a": 5, "b": 3}))

    def test_synthetic_corpora_are_zipf_like(self):
        """The generator must produce the heavy-tailed decay real
        leaks show — the property both the ideal meter and the top-10
        calibration rest on."""
        from repro.datasets.synthetic import generate_corpus
        corpus = generate_corpus("rockyou", total=12_000, seed=2)
        fit = fit_zipf(corpus)
        assert 0.3 < fit.exponent < 2.0
        assert fit.r_squared > 0.8


class TestIdealMeterCoverage:
    def test_basic(self):
        corpus = PasswordCorpus(["a"] * 8 + ["b"] * 4 + ["c", "d"])
        mass, unique = ideal_meter_coverage(corpus, threshold=4)
        assert mass == pytest.approx(12 / 14)
        assert unique == pytest.approx(2 / 4)

    def test_threshold_one_covers_all(self):
        corpus = PasswordCorpus(["a", "b", "c"])
        assert ideal_meter_coverage(corpus, threshold=1) == (1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_meter_coverage(PasswordCorpus([]), threshold=4)
        with pytest.raises(ValueError):
            ideal_meter_coverage(PasswordCorpus(["a"]), threshold=0)

    def test_paper_cutoff_on_synthetic_csdn(self):
        """Sec. V-D: only f_pw >= 4 passwords 'show their real
        strength'.  The head-heavy CSDN profile leaves a meaningful
        reliably-rankable mass."""
        from repro.datasets.synthetic import generate_corpus
        corpus = generate_corpus("csdn", total=12_000, seed=3)
        mass, unique = ideal_meter_coverage(corpus, threshold=4)
        assert mass > 0.10          # the popular head is rankable
        assert unique < 0.10        # but few distinct passwords are
