"""Shared async HTTP client helpers for the serving test suites.

Deliberately *not* built on the server's own :mod:`repro.serve.http`
parser: the serving tests are black-box, so the client side speaks raw
bytes over ``asyncio.open_connection`` and parses responses with its
own minimal reader.  A shared helper keeps the three suites (HTTP,
lifecycle, batching) and the throughput bench on identical client
behaviour.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro.core.meter import FuzzyPSM
from repro.serve import ReproServer, ServeConfig

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS

#: A spread of inputs the serving suites score: seen during training,
#: transformed variants, unseen strings, unicode, and the empty edge.
SERVE_PASSWORDS = [
    "password", "password123", "Password123", "p@ssw0rd", "123456",
    "iloveyou1", "woaini520", "qwerty12", "monkey99", "letmein!",
    "totally-novel-string", "Zx9#kk", "ab", "", "pässword",
]


def run(coro: Any, timeout: float = 60.0) -> Any:
    """``asyncio.run`` with a hang guard (no pytest-asyncio here)."""
    async def bounded() -> Any:
        return await asyncio.wait_for(coro, timeout=timeout)
    return asyncio.run(bounded())


def train_serve_meter() -> FuzzyPSM:
    """A small deterministic meter, private to one test/bench module.

    The session-scoped ``fuzzy_meter`` fixture must never be served:
    ``/accept`` mutates the meter, which would leak across suites.
    """
    return FuzzyPSM.train(
        list(BASE_DICTIONARY), list(TRAINING_PASSWORDS)
    )


@contextlib.asynccontextmanager
async def running_server(
    meter: Any, config: Optional[ServeConfig] = None
) -> AsyncIterator[ReproServer]:
    """A started :class:`ReproServer` on an ephemeral port."""
    server = ReproServer(meter, config if config is not None
                         else ServeConfig())
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


class ServeClient:
    """One keep-alive HTTP/1.1 connection speaking raw bytes."""

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def close(self) -> None:
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def send_raw(self, payload: bytes) -> None:
        assert self._writer is not None, "client is not connected"
        self._writer.write(payload)
        await self._writer.drain()

    async def read_response(self) -> Tuple[int, Dict[str, Any]]:
        """Parse one ``Content-Length``-framed JSON response."""
        reader = self._reader
        assert reader is not None, "client is not connected"
        status_line = await reader.readline()
        assert status_line, "server closed before responding"
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length)
        return status, json.loads(body)

    async def request(
        self, method: str, path: str,
        body: Optional[Dict[str, Any]] = None,
        close: bool = False,
    ) -> Tuple[int, Dict[str, Any]]:
        payload = (b"" if body is None
                   else json.dumps(body).encode("utf-8"))
        connection = "close" if close else "keep-alive"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        await self.send_raw(head.encode("latin-1") + payload)
        return await self.read_response()

    async def check(self, password: str) -> Dict[str, Any]:
        status, payload = await self.request(
            "POST", "/check", {"password": password}
        )
        assert status == 200, payload
        return payload


async def one_shot(
    port: int, method: str, path: str,
    body: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """Open, send one request with ``Connection: close``, read, done."""
    async with ServeClient(port) as client:
        return await client.request(method, path, body, close=True)
