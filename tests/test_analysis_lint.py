"""Tests for the domain-invariant linter (repro.analysis).

Covers, per ISSUE 2: positive/negative fixture snippets for every
rule, reporter golden output, suppression semantics, the CLI
subcommand, and the meta-test that ``src/repro`` itself is lint-clean.
"""

from __future__ import annotations

import io
import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    all_rules,
    check_source,
    describe_rules,
    lint_paths,
    run,
)
from repro.cli import main as cli_main

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def rule_ids_of(source, select=None):
    """The sorted rule ids the linter reports for a snippet.

    ``select`` scopes negative tests to the rule under test, so
    deliberately-minimal fixtures (e.g. unannotated ``def f``) do not
    trip unrelated rules.
    """
    snippet = textwrap.dedent(source)
    return sorted({v.rule_id for v in check_source(snippet, select=select)})


def lines_of(source, select=None):
    snippet = textwrap.dedent(source)
    return [
        (v.rule_id, v.line)
        for v in check_source(snippet, select=select)
    ]


class TestRegistry:
    def test_all_eleven_domain_rules_registered(self):
        assert list(all_rules()) == [
            "FPM001", "FPM002", "FPM003", "FPM004",
            "FPM005", "FPM006", "FPM007", "FPM008",
            "FPM009", "FPM010", "FPM011",
        ]

    def test_descriptions_cover_every_rule(self):
        rows = describe_rules()
        assert [row[0] for row in rows] == list(all_rules())
        assert all(row[1] and row[2] for row in rows)


class TestFloatProbabilityCompare:
    def test_flags_probability_equality(self):
        assert "FPM001" in rule_ids_of("""
            def f(probability, expected):
                return probability == expected
        """)

    def test_flags_entropy_inequality_and_method_calls(self):
        assert "FPM001" in rule_ids_of("""
            def f(meter, pw, x):
                return meter.entropy(pw) != x
        """)

    def test_allows_exact_sentinels(self):
        assert rule_ids_of("""
            def f(probability, entropy):
                import math
                return (probability == 0.0 or probability == 1
                        or entropy == math.inf
                        or entropy == float("inf"))
        """, select=["FPM001"]) == []

    def test_allows_ordering_and_non_probability_names(self):
        assert rule_ids_of("""
            def f(probability, position, other):
                return probability >= 0.5 and position == other
        """, select=["FPM001"]) == []


class TestRawProbabilityProduct:
    def test_flags_math_prod(self):
        assert "FPM002" in rule_ids_of("""
            import math
            def f(probabilities):
                return math.prod(probabilities)
        """)

    def test_flags_product_accumulation(self):
        assert "FPM002" in rule_ids_of("""
            def f(factors):
                probability = 1.0
                for factor in factors:
                    probability *= factor
                return probability
        """)

    def test_blessed_kernel_is_allowed(self):
        assert rule_ids_of("""
            class FuzzyGrammar:
                def derivation_probability(self, derivation):
                    probability = 1.0
                    for segment in derivation:
                        probability *= 0.5
                    return probability
        """, select=["FPM002"]) == []

    def test_non_probability_accumulation_is_allowed(self):
        assert rule_ids_of("""
            def f(values):
                total = 1
                for value in values:
                    total *= value
                return total
        """, select=["FPM002"]) == []


class TestUnseededRandom:
    def test_flags_global_rng_calls(self):
        assert "FPM003" in rule_ids_of("""
            import random
            def f():
                return random.random()
        """)

    def test_flags_seedless_random_instance_and_seed(self):
        ids = [rid for rid, _ in lines_of("""
            import random
            def f():
                random.seed(42)
                return random.Random()
        """)]
        assert ids.count("FPM003") == 2

    def test_flags_from_import_of_global_functions(self):
        assert "FPM003" in rule_ids_of("""
            from random import choice
            def f(items):
                return choice(items)
        """)

    def test_flags_numpy_global_state(self):
        assert "FPM003" in rule_ids_of("""
            import numpy as np
            def f():
                return np.random.rand(3)
        """)

    def test_allows_seeded_instances(self):
        assert rule_ids_of("""
            import random
            import numpy as np
            def f(rng: random.Random):
                seeded = random.Random(0)
                gen = np.random.default_rng(7)
                return rng.random() + seeded.random()
        """, select=["FPM003"]) == []


class TestUnorderedSerialization:
    def test_flags_set_iteration_in_to_dict(self):
        assert "FPM004" in rule_ids_of("""
            def to_dict(words):
                return [w for w in set(words)]
        """)

    def test_flags_set_literal_in_merge_for_loop(self):
        assert "FPM004" in rule_ids_of("""
            def merge(a, b):
                out = []
                for item in {a, b}:
                    out.append(item)
                return out
        """)

    def test_sorted_wrapper_is_allowed(self):
        assert rule_ids_of("""
            def to_dict(words):
                return [w for w in sorted(set(words))]
        """, select=["FPM004"]) == []

    def test_set_iteration_outside_serialization_is_allowed(self):
        assert rule_ids_of("""
            def score(words):
                return [w for w in set(words)]
        """, select=["FPM004"]) == []


class TestUnpicklableWorker:
    def test_flags_lambda_passed_to_pool(self):
        assert "FPM005" in rule_ids_of("""
            import multiprocessing
            def f(chunks):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(lambda c: c, chunks)
        """)

    def test_flags_nested_function_worker(self):
        assert "FPM005" in rule_ids_of("""
            import multiprocessing
            def f(chunks):
                def work(chunk):
                    return chunk
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, chunks)
        """)

    def test_flags_lambda_initializer_keyword(self):
        assert "FPM005" in rule_ids_of("""
            import multiprocessing
            def f():
                return multiprocessing.Pool(
                    2, initializer=lambda: None
                )
        """)

    def test_module_level_worker_is_allowed(self):
        assert rule_ids_of("""
            import multiprocessing
            def work(chunk):
                return chunk
            def f(chunks):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, chunks)
        """, select=["FPM005"]) == []

    def test_inactive_without_multiprocessing_import(self):
        assert rule_ids_of("""
            def f(items):
                return items.map(lambda x: x)
        """, select=["FPM005"]) == []


class TestSilentExcept:
    def test_flags_bare_except(self):
        assert "FPM006" in rule_ids_of("""
            def f():
                try:
                    return 1
                except:
                    return 0
        """)

    def test_flags_except_exception_pass(self):
        assert "FPM006" in rule_ids_of("""
            def f():
                try:
                    return 1
                except Exception:
                    pass
        """)

    def test_narrow_handler_is_allowed(self):
        assert rule_ids_of("""
            def f():
                try:
                    return 1
                except ValueError:
                    return 0
        """, select=["FPM006"]) == []

    def test_broad_handler_with_real_body_is_allowed(self):
        assert rule_ids_of("""
            def f(log):
                try:
                    return 1
                except Exception as error:
                    log(error)
                    raise
        """, select=["FPM006"]) == []


class TestMutableDefault:
    def test_flags_list_dict_and_constructor_defaults(self):
        ids = [rid for rid, _ in lines_of("""
            def f(a=[], b={}, *, c=dict()):
                return a, b, c
        """)]
        assert ids.count("FPM007") == 3

    def test_none_and_immutable_defaults_are_allowed(self):
        assert rule_ids_of("""
            def f(a=None, b=(), c="x", d=0):
                return a, b, c, d
        """, select=["FPM007"]) == []


class TestMissingAnnotations:
    def test_flags_unannotated_public_function(self):
        ids = rule_ids_of("""
            def public(value):
                return value
        """)
        assert ids == ["FPM008"]

    def test_flags_unannotated_public_method(self):
        assert "FPM008" in rule_ids_of("""
            class Meter:
                def score(self, password: str):
                    return 0.0
        """)

    def test_private_and_nested_functions_are_exempt(self):
        assert rule_ids_of("""
            def _helper(value):
                return value
            def public(value: int) -> int:
                def inner(x):
                    return x
                return inner(value)
        """) == []

    def test_fully_annotated_is_clean(self):
        assert rule_ids_of("""
            from typing import Optional
            class Meter:
                def score(self, password: str,
                          limit: Optional[int] = None) -> float:
                    return 0.0
        """) == []


class TestDirectClock:
    def test_flags_time_time_and_perf_counter(self):
        ids = [rid for rid, _ in lines_of("""
            import time
            def f():
                start = time.perf_counter()
                return time.time() - start
        """, select=["FPM009"])]
        assert ids.count("FPM009") == 2

    def test_flags_aliased_module_and_ns_variants(self):
        assert "FPM009" in rule_ids_of("""
            import time as t
            def f():
                return t.monotonic_ns()
        """, select=["FPM009"])

    def test_flags_from_import_with_alias(self):
        assert "FPM009" in rule_ids_of("""
            from time import perf_counter as clock
            def f():
                return clock()
        """, select=["FPM009"])

    def test_blessed_obs_clock_is_allowed(self):
        assert rule_ids_of("""
            from repro.obs.core import now
            def f():
                return now()
        """, select=["FPM009"]) == []

    def test_non_clock_time_functions_are_allowed(self):
        assert rule_ids_of("""
            import time
            def f():
                time.sleep(0.1)
                return time.strftime("%Y")
        """, select=["FPM009"]) == []

    def test_unrelated_names_are_not_confused(self):
        # A local object that happens to be called ``time`` must not
        # trip the module-attribute pattern.
        assert rule_ids_of("""
            def f(time):
                return time.perf_counter()
        """, select=["FPM009"]) == []

    def test_obs_paths_are_exempt(self):
        snippet = textwrap.dedent("""
            import time
            def f():
                return time.perf_counter()
        """)
        exempt = check_source(
            snippet, path="src/repro/obs/core.py", select=["FPM009"]
        )
        assert exempt == []
        bench = check_source(
            snippet, path="benchmarks/test_timing.py", select=["FPM009"]
        )
        assert bench == []
        flagged = check_source(
            snippet, path="src/repro/core/meter.py", select=["FPM009"]
        )
        assert [v.rule_id for v in flagged] == ["FPM009"]


class TestConcreteMeterDispatch:
    def test_flags_isinstance_against_concrete_meters(self):
        ids = [rid for rid, _ in lines_of("""
            def f(meter):
                if isinstance(meter, FuzzyPSM):
                    return 1
                if isinstance(meter, (PCFGMeter, MarkovMeter)):
                    return 2
                return 0
        """, select=["FPM010"])]
        # One violation per offending class: the tuple form names two.
        assert ids.count("FPM010") == 3

    def test_flags_dotted_class_references(self):
        assert "FPM010" in rule_ids_of("""
            import repro.meters.pcfg as pcfg
            def f(meter):
                return isinstance(meter, pcfg.PCFGMeter)
        """, select=["FPM010"])

    def test_flags_kind_literal_comparisons(self):
        ids = [rid for rid, _ in lines_of("""
            def f(kind):
                if kind == "markov":
                    return 1
                if kind in ("pcfg", "fuzzypsm"):
                    return 2
                return kind != "zxcvbn"
        """, select=["FPM010"])]
        assert ids.count("FPM010") >= 3

    def test_capability_protocol_checks_are_allowed(self):
        assert rule_ids_of("""
            from repro.meters.registry import Capability, Updatable
            def f(meter, spec):
                return isinstance(meter, Updatable) and spec.has(
                    Capability.PERSISTABLE
                )
        """, select=["FPM010"]) == []

    def test_scenario_kind_ideal_is_allowed(self):
        # ``ideal`` doubles as a *scenario* kind (the paper's
        # ideal/real/cross split); comparing it is not meter dispatch.
        assert rule_ids_of("""
            def f(scenario):
                return scenario.kind == "ideal"
        """, select=["FPM010"]) == []

    def test_registry_module_is_exempt(self):
        snippet = textwrap.dedent("""
            def f(kind):
                return kind == "markov"
        """)
        exempt = check_source(
            snippet, path="src/repro/meters/registry.py",
            select=["FPM010"],
        )
        assert exempt == []
        flagged = check_source(
            snippet, path="src/repro/cli.py", select=["FPM010"]
        )
        assert [v.rule_id for v in flagged] == ["FPM010"]


class TestGrammarTableAccess:
    def test_flags_direct_table_probability_calls(self):
        ids = [rid for rid, _ in lines_of("""
            def f(grammar, structure, base):
                a = grammar.structures.probability(structure)
                b = grammar.terminals[len(base)].probability(base)
                c = grammar.leet["L1"].smoothed_probability(True)
                return a * b * c
        """, select=["FPM011"])]
        assert ids.count("FPM011") == 3

    def test_count_reads_are_allowed(self):
        assert rule_ids_of("""
            def f(grammar, base):
                total = grammar.terminals[len(base)].total
                count = grammar.reverse.count(True)
                return count / total if total else 0.0
        """, select=["FPM011"]) == []

    def test_blessed_wrappers_are_allowed(self):
        assert rule_ids_of("""
            def f(grammar, frozen, derivation):
                exact = grammar.derivation_probability(derivation)
                fast = frozen.derivation_probability(derivation)
                return exact, fast
        """, select=["FPM011"]) == []

    def test_unrelated_probability_calls_are_allowed(self):
        assert rule_ids_of("""
            def f(dist, item):
                return dist.probability(item)
        """, select=["FPM011"]) == []

    def test_grammar_and_frozen_files_are_exempt(self):
        snippet = textwrap.dedent("""
            def f(grammar, structure):
                return grammar.structures.probability(structure)
        """)
        for path in (
            "src/repro/core/grammar.py",
            "src/repro/core/frozen.py",
        ):
            assert check_source(
                snippet, path=path, select=["FPM011"]
            ) == []
        flagged = check_source(
            snippet, path="src/repro/meters/pcfg.py", select=["FPM011"]
        )
        assert [v.rule_id for v in flagged] == ["FPM011"]


class TestSuppressions:
    def test_justified_suppression_silences_the_line(self):
        assert rule_ids_of("""
            def f():
                try:
                    return 1
                except:  # lint-ok: FPM006 -- exercised by a fixture
                    return 0
        """, select=["FPM006"]) == []

    def test_suppression_without_reason_is_reported(self):
        ids = rule_ids_of("""
            def f():
                try:
                    return 1
                except:  # lint-ok: FPM006
                    return 0
        """, select=["FPM006"])
        assert ids == ["FPM000", "FPM006"]

    def test_suppression_of_unknown_rule_is_reported(self):
        ids = rule_ids_of("""
            x = 1  # lint-ok: FPM999 -- no such rule
        """)
        assert "FPM000" in ids

    def test_suppression_only_covers_its_own_rule(self):
        ids = rule_ids_of("""
            def f():
                try:
                    return 1
                except:  # lint-ok: FPM001 -- wrong rule id
                    return 0
        """)
        assert "FPM006" in ids

    def test_marker_inside_string_is_not_a_suppression(self):
        ids = rule_ids_of("""
            def f():
                marker = "# lint-ok: FPM006 -- not a comment"
                try:
                    return marker
                except:
                    return 0
        """, select=["FPM006"])
        assert ids == ["FPM006"]


class TestSelectAndSyntax:
    def test_select_restricts_to_one_rule(self):
        snippet = textwrap.dedent("""
            def f(a=[]):
                try:
                    return a
                except:
                    return None
        """)
        violations = check_source(snippet, select=["FPM007"])
        assert {v.rule_id for v in violations} == {"FPM007"}

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            check_source("x = 1", select=["FPM777"])

    def test_syntax_error_is_reported_not_raised(self):
        violations = check_source("def broken(:\n")
        assert [v.rule_id for v in violations] == ["FPM900"]


FIXTURE = textwrap.dedent("""\
    def public(value):
        try:
            return value
        except:
            return None
""")


class TestReporters:
    def test_text_report_golden(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        stream = io.StringIO()
        code = run([str(path)], output_format="text", stream=stream)
        assert code == 1
        assert stream.getvalue() == (
            f"{path}:1:1: FPM008 public function public() is missing "
            "a return annotation\n"
            f"{path}:1:1: FPM008 public function public() is missing "
            "parameter annotations: value\n"
            f"{path}:4:5: FPM006 bare except catches "
            "SystemExit/KeyboardInterrupt too; name the exceptions "
            "this path can actually handle\n"
            "3 violation(s) in 1 file checked\n"
        )

    def test_text_report_clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        stream = io.StringIO()
        code = run([str(path)], output_format="text", stream=stream)
        assert code == 0
        assert stream.getvalue() == "clean: 1 file checked\n"

    def test_json_report_structure(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        stream = io.StringIO()
        code = run([str(path)], output_format="json", stream=stream)
        assert code == 1
        payload = json.loads(stream.getvalue())
        assert payload["files_checked"] == 1
        assert payload["violation_count"] == 3
        assert payload["counts_by_rule"] == {"FPM006": 1, "FPM008": 2}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "column", "rule_id",
                              "message"}

    def test_unknown_format_is_usage_error(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        assert run([str(path)], output_format="xml") == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert run([str(tmp_path / "absent")]) == 2


class TestCli:
    def test_lint_subcommand_reports_and_fails(self, tmp_path, capsys):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        code = cli_main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{path}:4:5: FPM006" in out

    def test_lint_subcommand_clean_exit(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        assert cli_main(["lint", str(path)]) == 0
        assert "clean: 1 file checked" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out


class TestRepoIsClean:
    def test_src_repro_is_lint_clean(self):
        violations, files_checked = lint_paths([str(SRC_ROOT)])
        assert files_checked > 60
        assert violations == []

    def test_repo_suppressions_all_carry_justifications(self):
        # apply_suppressions already enforces this (FPM000), but assert
        # it end-to-end so a framework regression cannot mask it.
        from repro.analysis import find_suppressions
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for suppression in find_suppressions(path.read_text()):
                assert suppression.reason, (
                    f"{path}:{suppression.line} suppression has no "
                    "justification"
                )
