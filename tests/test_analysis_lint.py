"""Tests for the domain-invariant linter (repro.analysis).

Covers, per ISSUE 2: positive/negative fixture snippets for every
rule, reporter golden output, suppression semantics, the CLI
subcommand, and the meta-test that ``src/repro`` itself is lint-clean.
"""

from __future__ import annotations

import io
import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    all_rules,
    check_source,
    describe_rules,
    lint_paths,
    run,
)
from repro.cli import main as cli_main

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def rule_ids_of(source, select=None):
    """The sorted rule ids the linter reports for a snippet.

    ``select`` scopes negative tests to the rule under test, so
    deliberately-minimal fixtures (e.g. unannotated ``def f``) do not
    trip unrelated rules.
    """
    snippet = textwrap.dedent(source)
    return sorted({v.rule_id for v in check_source(snippet, select=select)})


def lines_of(source, select=None):
    snippet = textwrap.dedent(source)
    return [
        (v.rule_id, v.line)
        for v in check_source(snippet, select=select)
    ]


class TestRegistry:
    def test_all_fifteen_domain_rules_registered(self):
        assert list(all_rules()) == [
            "FPM001", "FPM002", "FPM003", "FPM004",
            "FPM005", "FPM006", "FPM007", "FPM008",
            "FPM009", "FPM010", "FPM011", "FPM012",
            "FPM013", "FPM014", "FPM015",
        ]

    def test_descriptions_cover_every_rule(self):
        rows = describe_rules()
        assert [row[0] for row in rows] == list(all_rules())
        assert all(row[1] and row[2] for row in rows)


class TestFloatProbabilityCompare:
    def test_flags_probability_equality(self):
        assert "FPM001" in rule_ids_of("""
            def f(probability, expected):
                return probability == expected
        """)

    def test_flags_entropy_inequality_and_method_calls(self):
        assert "FPM001" in rule_ids_of("""
            def f(meter, pw, x):
                return meter.entropy(pw) != x
        """)

    def test_allows_exact_sentinels(self):
        assert rule_ids_of("""
            def f(probability, entropy):
                import math
                return (probability == 0.0 or probability == 1
                        or entropy == math.inf
                        or entropy == float("inf"))
        """, select=["FPM001"]) == []

    def test_allows_ordering_and_non_probability_names(self):
        assert rule_ids_of("""
            def f(probability, position, other):
                return probability >= 0.5 and position == other
        """, select=["FPM001"]) == []


class TestRawProbabilityProduct:
    def test_flags_math_prod(self):
        assert "FPM002" in rule_ids_of("""
            import math
            def f(probabilities):
                return math.prod(probabilities)
        """)

    def test_flags_product_accumulation(self):
        assert "FPM002" in rule_ids_of("""
            def f(factors):
                probability = 1.0
                for factor in factors:
                    probability *= factor
                return probability
        """)

    def test_blessed_kernel_is_allowed(self):
        assert rule_ids_of("""
            class FuzzyGrammar:
                def derivation_probability(self, derivation):
                    probability = 1.0
                    for segment in derivation:
                        probability *= 0.5
                    return probability
        """, select=["FPM002"]) == []

    def test_non_probability_accumulation_is_allowed(self):
        assert rule_ids_of("""
            def f(values):
                total = 1
                for value in values:
                    total *= value
                return total
        """, select=["FPM002"]) == []


class TestUnseededRandom:
    def test_flags_global_rng_calls(self):
        assert "FPM003" in rule_ids_of("""
            import random
            def f():
                return random.random()
        """)

    def test_flags_seedless_random_instance_and_seed(self):
        ids = [rid for rid, _ in lines_of("""
            import random
            def f():
                random.seed(42)
                return random.Random()
        """)]
        assert ids.count("FPM003") == 2

    def test_flags_from_import_of_global_functions(self):
        assert "FPM003" in rule_ids_of("""
            from random import choice
            def f(items):
                return choice(items)
        """)

    def test_flags_numpy_global_state(self):
        assert "FPM003" in rule_ids_of("""
            import numpy as np
            def f():
                return np.random.rand(3)
        """)

    def test_allows_seeded_instances(self):
        assert rule_ids_of("""
            import random
            import numpy as np
            def f(rng: random.Random):
                seeded = random.Random(0)
                gen = np.random.default_rng(7)
                return rng.random() + seeded.random()
        """, select=["FPM003"]) == []


class TestUnorderedSerialization:
    def test_flags_set_iteration_in_to_dict(self):
        assert "FPM004" in rule_ids_of("""
            def to_dict(words):
                return [w for w in set(words)]
        """)

    def test_flags_set_literal_in_merge_for_loop(self):
        assert "FPM004" in rule_ids_of("""
            def merge(a, b):
                out = []
                for item in {a, b}:
                    out.append(item)
                return out
        """)

    def test_sorted_wrapper_is_allowed(self):
        assert rule_ids_of("""
            def to_dict(words):
                return [w for w in sorted(set(words))]
        """, select=["FPM004"]) == []

    def test_set_iteration_outside_serialization_is_allowed(self):
        assert rule_ids_of("""
            def score(words):
                return [w for w in set(words)]
        """, select=["FPM004"]) == []


class TestUnpicklableWorker:
    def test_flags_lambda_passed_to_pool(self):
        assert "FPM005" in rule_ids_of("""
            import multiprocessing
            def f(chunks):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(lambda c: c, chunks)
        """)

    def test_flags_nested_function_worker(self):
        assert "FPM005" in rule_ids_of("""
            import multiprocessing
            def f(chunks):
                def work(chunk):
                    return chunk
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, chunks)
        """)

    def test_flags_lambda_initializer_keyword(self):
        assert "FPM005" in rule_ids_of("""
            import multiprocessing
            def f():
                return multiprocessing.Pool(
                    2, initializer=lambda: None
                )
        """)

    def test_module_level_worker_is_allowed(self):
        assert rule_ids_of("""
            import multiprocessing
            def work(chunk):
                return chunk
            def f(chunks):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, chunks)
        """, select=["FPM005"]) == []

    def test_inactive_without_multiprocessing_import(self):
        assert rule_ids_of("""
            def f(items):
                return items.map(lambda x: x)
        """, select=["FPM005"]) == []


class TestSilentExcept:
    def test_flags_bare_except(self):
        assert "FPM006" in rule_ids_of("""
            def f():
                try:
                    return 1
                except:
                    return 0
        """)

    def test_flags_except_exception_pass(self):
        assert "FPM006" in rule_ids_of("""
            def f():
                try:
                    return 1
                except Exception:
                    pass
        """)

    def test_narrow_handler_is_allowed(self):
        assert rule_ids_of("""
            def f():
                try:
                    return 1
                except ValueError:
                    return 0
        """, select=["FPM006"]) == []

    def test_broad_handler_with_real_body_is_allowed(self):
        assert rule_ids_of("""
            def f(log):
                try:
                    return 1
                except Exception as error:
                    log(error)
                    raise
        """, select=["FPM006"]) == []


class TestMutableDefault:
    def test_flags_list_dict_and_constructor_defaults(self):
        ids = [rid for rid, _ in lines_of("""
            def f(a=[], b={}, *, c=dict()):
                return a, b, c
        """)]
        assert ids.count("FPM007") == 3

    def test_none_and_immutable_defaults_are_allowed(self):
        assert rule_ids_of("""
            def f(a=None, b=(), c="x", d=0):
                return a, b, c, d
        """, select=["FPM007"]) == []


class TestMissingAnnotations:
    def test_flags_unannotated_public_function(self):
        ids = rule_ids_of("""
            def public(value):
                return value
        """)
        assert ids == ["FPM008"]

    def test_flags_unannotated_public_method(self):
        assert "FPM008" in rule_ids_of("""
            class Meter:
                def score(self, password: str):
                    return 0.0
        """)

    def test_private_and_nested_functions_are_exempt(self):
        assert rule_ids_of("""
            def _helper(value):
                return value
            def public(value: int) -> int:
                def inner(x):
                    return x
                return inner(value)
        """) == []

    def test_fully_annotated_is_clean(self):
        assert rule_ids_of("""
            from typing import Optional
            class Meter:
                def score(self, password: str,
                          limit: Optional[int] = None) -> float:
                    return 0.0
        """) == []


class TestDirectClock:
    def test_flags_time_time_and_perf_counter(self):
        ids = [rid for rid, _ in lines_of("""
            import time
            def f():
                start = time.perf_counter()
                return time.time() - start
        """, select=["FPM009"])]
        assert ids.count("FPM009") == 2

    def test_flags_aliased_module_and_ns_variants(self):
        assert "FPM009" in rule_ids_of("""
            import time as t
            def f():
                return t.monotonic_ns()
        """, select=["FPM009"])

    def test_flags_from_import_with_alias(self):
        assert "FPM009" in rule_ids_of("""
            from time import perf_counter as clock
            def f():
                return clock()
        """, select=["FPM009"])

    def test_blessed_obs_clock_is_allowed(self):
        assert rule_ids_of("""
            from repro.obs.core import now
            def f():
                return now()
        """, select=["FPM009"]) == []

    def test_non_clock_time_functions_are_allowed(self):
        assert rule_ids_of("""
            import time
            def f():
                time.sleep(0.1)
                return time.strftime("%Y")
        """, select=["FPM009"]) == []

    def test_unrelated_names_are_not_confused(self):
        # A local object that happens to be called ``time`` must not
        # trip the module-attribute pattern.
        assert rule_ids_of("""
            def f(time):
                return time.perf_counter()
        """, select=["FPM009"]) == []

    def test_obs_paths_are_exempt(self):
        snippet = textwrap.dedent("""
            import time
            def f():
                return time.perf_counter()
        """)
        exempt = check_source(
            snippet, path="src/repro/obs/core.py", select=["FPM009"]
        )
        assert exempt == []
        bench = check_source(
            snippet, path="benchmarks/test_timing.py", select=["FPM009"]
        )
        assert bench == []
        flagged = check_source(
            snippet, path="src/repro/core/meter.py", select=["FPM009"]
        )
        assert [v.rule_id for v in flagged] == ["FPM009"]


class TestConcreteMeterDispatch:
    def test_flags_isinstance_against_concrete_meters(self):
        ids = [rid for rid, _ in lines_of("""
            def f(meter):
                if isinstance(meter, FuzzyPSM):
                    return 1
                if isinstance(meter, (PCFGMeter, MarkovMeter)):
                    return 2
                return 0
        """, select=["FPM010"])]
        # One violation per offending class: the tuple form names two.
        assert ids.count("FPM010") == 3

    def test_flags_dotted_class_references(self):
        assert "FPM010" in rule_ids_of("""
            import repro.meters.pcfg as pcfg
            def f(meter):
                return isinstance(meter, pcfg.PCFGMeter)
        """, select=["FPM010"])

    def test_flags_kind_literal_comparisons(self):
        ids = [rid for rid, _ in lines_of("""
            def f(kind):
                if kind == "markov":
                    return 1
                if kind in ("pcfg", "fuzzypsm"):
                    return 2
                return kind != "zxcvbn"
        """, select=["FPM010"])]
        assert ids.count("FPM010") >= 3

    def test_capability_protocol_checks_are_allowed(self):
        assert rule_ids_of("""
            from repro.meters.registry import Capability, Updatable
            def f(meter, spec):
                return isinstance(meter, Updatable) and spec.has(
                    Capability.PERSISTABLE
                )
        """, select=["FPM010"]) == []

    def test_scenario_kind_ideal_is_allowed(self):
        # ``ideal`` doubles as a *scenario* kind (the paper's
        # ideal/real/cross split); comparing it is not meter dispatch.
        assert rule_ids_of("""
            def f(scenario):
                return scenario.kind == "ideal"
        """, select=["FPM010"]) == []

    def test_registry_module_is_exempt(self):
        snippet = textwrap.dedent("""
            def f(kind):
                return kind == "markov"
        """)
        exempt = check_source(
            snippet, path="src/repro/meters/registry.py",
            select=["FPM010"],
        )
        assert exempt == []
        flagged = check_source(
            snippet, path="src/repro/cli.py", select=["FPM010"]
        )
        assert [v.rule_id for v in flagged] == ["FPM010"]


class TestGrammarTableAccess:
    def test_flags_direct_table_probability_calls(self):
        ids = [rid for rid, _ in lines_of("""
            def f(grammar, structure, base):
                a = grammar.structures.probability(structure)
                b = grammar.terminals[len(base)].probability(base)
                c = grammar.leet["L1"].smoothed_probability(True)
                return a * b * c
        """, select=["FPM011"])]
        assert ids.count("FPM011") == 3

    def test_count_reads_are_allowed(self):
        assert rule_ids_of("""
            def f(grammar, base):
                total = grammar.terminals[len(base)].total
                count = grammar.reverse.count(True)
                return count / total if total else 0.0
        """, select=["FPM011"]) == []

    def test_blessed_wrappers_are_allowed(self):
        assert rule_ids_of("""
            def f(grammar, frozen, derivation):
                exact = grammar.derivation_probability(derivation)
                fast = frozen.derivation_probability(derivation)
                return exact, fast
        """, select=["FPM011"]) == []

    def test_unrelated_probability_calls_are_allowed(self):
        assert rule_ids_of("""
            def f(dist, item):
                return dist.probability(item)
        """, select=["FPM011"]) == []

    def test_grammar_and_frozen_files_are_exempt(self):
        snippet = textwrap.dedent("""
            def f(grammar, structure):
                return grammar.structures.probability(structure)
        """)
        for path in (
            "src/repro/core/grammar.py",
            "src/repro/core/frozen.py",
        ):
            assert check_source(
                snippet, path=path, select=["FPM011"]
            ) == []
        flagged = check_source(
            snippet, path="src/repro/meters/pcfg.py", select=["FPM011"]
        )
        assert [v.rule_id for v in flagged] == ["FPM011"]


def lint_project(tmp_path, files, select=None, **kwargs):
    """Write ``files`` (name -> source) and lint the tree as a project.

    The cross-module rules (FPM012-015) only activate when a
    :class:`ProjectIndex` is available, which ``lint_paths`` builds
    over the discovered files — so project-rule fixtures go through
    the filesystem rather than ``check_source``.
    """
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    violations, _ = lint_paths([str(tmp_path)], select=select, **kwargs)
    return violations


POOL_FIXTURE = """
    import multiprocessing

    _TRIE = None


    def _worker_init_trie(trie):
        global _TRIE
        _TRIE = trie


    def leaky_helper(chunk):
        global _TRIE
        _TRIE = dict(chunk)
        return chunk


    def work(chunk):
        return leaky_helper(chunk)


    def launch(chunks):
        with multiprocessing.Pool(
            2, initializer=_worker_init_trie, initargs=(None,)
        ) as pool:
            return pool.map(work, chunks)
"""


class TestForkSafety:
    """FPM012 needs the project index: seeded bugs must be caught."""

    def test_seeded_transitive_worker_global_write(self, tmp_path):
        violations = lint_project(
            tmp_path, {"pipeline.py": POOL_FIXTURE}, select=["FPM012"]
        )
        assert [v.rule_id for v in violations] == ["FPM012"]
        assert "leaky_helper" in violations[0].message
        assert "_TRIE" in violations[0].message

    def test_blessed_initializer_may_write(self, tmp_path):
        clean = POOL_FIXTURE.replace(
            "return leaky_helper(chunk)", "return chunk"
        )
        violations = lint_project(
            tmp_path, {"pipeline.py": clean}, select=["FPM012"]
        )
        assert violations == []

    def test_non_worker_global_write_is_allowed(self, tmp_path):
        violations = lint_project(
            tmp_path,
            {
                "config.py": """
                    _FLAG = False


                    def enable():
                        global _FLAG
                        _FLAG = True
                """
            },
            select=["FPM012"],
        )
        assert violations == []

    def test_lambda_and_nested_task_targets(self, tmp_path):
        violations = lint_project(
            tmp_path,
            {
                "tasks.py": """
                    import multiprocessing


                    def launch(chunks):
                        def inner(chunk):
                            return chunk

                        with multiprocessing.Pool(2) as pool:
                            pool.map(lambda c: c, chunks)
                            return pool.map(inner, chunks)
                """
            },
            select=["FPM012"],
        )
        assert [v.rule_id for v in violations] == ["FPM012", "FPM012"]

    def test_literal_submit_argument_is_not_a_task(self, tmp_path):
        # ``.submit("data")`` on some non-executor object (an async
        # batcher, a bound collection) passes data, not a callable —
        # a constant first argument must never read as a lambda.
        violations = lint_project(
            tmp_path,
            {
                "client.py": """
                    async def enqueue(batcher):
                        return await batcher.submit("password123")
                """
            },
            select=["FPM012"],
        )
        assert violations == []

    def test_check_source_degrades_gracefully_without_index(self):
        # No index -> the rule cannot see call sites and stays silent
        # instead of guessing.
        assert rule_ids_of(POOL_FIXTURE, select=["FPM012"]) == []


GRAMMAR_FIXTURE = """
    class ToyGrammar:
        def __init__(self):
            self._epoch = 0
            self.structures = {}
            self.terminals = {}

        def observe(self, key):
            self.structures.add(key, 1)
            self._epoch += 1

        def sneaky(self, key):
            self.structures.add(key, 1)
"""


class TestEpochDiscipline:
    """FPM013: table mutation without an unconditional epoch bump."""

    def test_seeded_missing_bump_is_caught(self, tmp_path):
        violations = lint_project(
            tmp_path, {"grammar.py": GRAMMAR_FIXTURE}, select=["FPM013"]
        )
        assert [v.rule_id for v in violations] == ["FPM013"]
        assert "sneaky" in violations[0].message
        assert "structures" in violations[0].message

    def test_conditional_bump_is_still_a_violation(self, tmp_path):
        fixture = GRAMMAR_FIXTURE + textwrap.indent(
            textwrap.dedent("""
                def maybe(self, key, bump):
                    self.terminals[len(key)] = key
                    if bump:
                        self._epoch += 1
            """),
            "        ",
        )
        violations = lint_project(
            tmp_path, {"grammar.py": fixture}, select=["FPM013"]
        )
        assert [v.rule_id for v in violations] == ["FPM013", "FPM013"]
        assert any("maybe" in v.message for v in violations)
        assert any("sneaky" in v.message for v in violations)

    def test_annotated_parameter_mutation_across_modules(self, tmp_path):
        violations = lint_project(
            tmp_path,
            {
                "grammar.py": GRAMMAR_FIXTURE.replace(
                    "        def sneaky(self, key):\n"
                    "            self.structures.add(key, 1)\n", ""
                ),
                "merge.py": """
                    from grammar import ToyGrammar


                    def merge_into(grammar: ToyGrammar, items):
                        for item in items:
                            grammar.structures.add(item, 1)
                """,
            },
            select=["FPM013"],
        )
        assert [v.rule_id for v in violations] == ["FPM013"]
        assert violations[0].path.endswith("merge.py")

    def test_init_of_guarded_class_is_exempt(self, tmp_path):
        clean = GRAMMAR_FIXTURE.replace(
            "        def sneaky(self, key):\n"
            "            self.structures.add(key, 1)\n", ""
        )
        assert lint_project(
            tmp_path, {"grammar.py": clean}, select=["FPM013"]
        ) == []


TELEMETRY_FIXTURE = """
    from repro import obs

    obs.register_namespace("toylint")


    def record(telemetry, n):
        telemetry.incr("toylint.files")
        telemetry.observe("toylint.seconds", n)
        telemetry.incr("freeform")
        telemetry.incr("bogus.count")
        telemetry.incr(f"toylint.rule.{n}.hits")
        telemetry.incr(f"{n}.hits")
"""


class TestTelemetryNameHygiene:
    """FPM014: probe names must be dotted, registered-namespace literals."""

    def test_unregistered_and_undotted_names_are_caught(self, tmp_path):
        violations = lint_project(
            tmp_path, {"probes.py": TELEMETRY_FIXTURE}, select=["FPM014"]
        )
        assert [v.rule_id for v in violations] == ["FPM014"] * 3
        lines = [v.line for v in violations]
        source = textwrap.dedent(TELEMETRY_FIXTURE).splitlines()
        flagged = {source[line - 1].strip() for line in lines}
        assert flagged == {
            'telemetry.incr("freeform")',
            'telemetry.incr("bogus.count")',
            'telemetry.incr(f"{n}.hits")',
        }

    def test_namespaces_registered_in_fixture_are_authoritative(
        self, tmp_path
    ):
        # "toylint" is registered by the fixture module itself: the
        # index harvests register_namespace call sites statically.
        violations = lint_project(
            tmp_path,
            {
                "probes.py": """
                    from repro import obs

                    obs.register_namespace("toylint")


                    def record(telemetry):
                        telemetry.incr("toylint.ok")
                """
            },
            select=["FPM014"],
        )
        assert violations == []

    def test_attack_namespace_is_registered_at_runtime(self):
        # The attack engine's probes (attack.enum.*, attack.beam.*,
        # attack.masks.*, attack.sample.*, attack.simulate.*) ride on
        # the central registration in repro.obs.
        from repro import obs
        assert "attack" in obs.registered_namespaces()

    def test_incr_many_tuples_are_judged(self, tmp_path):
        # The engine flushes counters in incr_many batches; each
        # tuple's name literal is still under FPM014's jurisdiction.
        violations = lint_project(
            tmp_path,
            {
                "probes.py": """
                    from repro import obs

                    obs.register_namespace("attack")


                    def flush(telemetry, stats):
                        telemetry.incr_many([
                            ("attack.enum.yields", stats),
                            ("attack.beam.floor_dropped", stats),
                            ("rogue.counter", stats),
                        ])
                """
            },
            select=["FPM014"],
        )
        assert len(violations) == 1
        assert "rogue" in violations[0].message


METER_FIXTURE = """
    from repro.meters.registry import Capability, register_meter


    class MeterBase:
        def probability(self, password: str) -> float:
            return 0.0

        def entropy_many(self, passwords, jobs=None):
            return []


    @register_meter(
        "toyfixture",
        capabilities=(
            Capability.UPDATABLE,
            Capability.PARALLEL_SCORABLE,
        ),
    )
    class FixtureMeter(MeterBase):
        def probability_many(self, passwords):
            return [0.0 for _ in passwords]
"""


class TestCapabilityConformance:
    """FPM015: declared capabilities must be statically backed."""

    def test_missing_method_and_parameter_are_caught(self, tmp_path):
        # The MRO terminates locally (MeterBase -> object), so the
        # missing update() is provable; probability_many exists but
        # lacks the jobs= parameter PARALLEL_SCORABLE requires.
        violations = lint_project(
            tmp_path, {"meter.py": METER_FIXTURE}, select=["FPM015"]
        )
        messages = sorted(v.message for v in violations)
        assert len(messages) == 2
        assert any("update" in message for message in messages)
        assert any("jobs" in message for message in messages)

    def test_inherited_methods_satisfy_capabilities(self, tmp_path):
        # update() on the base class and jobs= on both batch methods:
        # conformance is resolved over the static MRO, not just the
        # registered class body.
        fixed = METER_FIXTURE.replace(
            "def entropy_many(self, passwords, jobs=None):\n"
            "            return []",
            "def entropy_many(self, passwords, jobs=None):\n"
            "            return []\n\n"
            "        def update(self, password, count=1):\n"
            "            return None",
        ).replace(
            "def probability_many(self, passwords):",
            "def probability_many(self, passwords, jobs=None):",
        )
        violations = lint_project(
            tmp_path, {"meter.py": fixed}, select=["FPM015"]
        )
        assert violations == []

    def test_unresolvable_base_is_lenient_for_methods(self, tmp_path):
        # When the MRO escapes the index (repro.meters.base is not
        # part of the linted tree), absence of a method is not
        # provable and must not be reported.
        external = METER_FIXTURE.replace(
            "from repro.meters.registry import",
            "from repro.meters.base import Meter\n"
            "    from repro.meters.registry import",
        ).replace("class MeterBase:", "class MeterBase(Meter):")
        violations = lint_project(
            tmp_path, {"meter.py": external}, select=["FPM015"]
        )
        # Only the provable defect remains: jobs= on a method that is
        # defined right there.
        assert [v.rule_id for v in violations] == ["FPM015"]
        assert "jobs" in violations[0].message


class TestIndexBackedDispatch:
    """FPM010/FPM011 upgrade from path heuristics to index queries."""

    def test_registered_fixture_class_joins_fpm010(self, tmp_path):
        violations = lint_project(
            tmp_path,
            {
                "meter.py": METER_FIXTURE.replace(
                    "Capability.UPDATABLE,\n"
                    "            Capability.PARALLEL_SCORABLE,",
                    "Capability.BATCH_SCORABLE,",
                ),
                "consumer.py": """
                    def dispatch(meter, kind):
                        from meter import FixtureMeter

                        if isinstance(meter, FixtureMeter):
                            return 1
                        return kind == "toyfixture"
                """,
            },
            select=["FPM010"],
        )
        assert [v.rule_id for v in violations] == ["FPM010", "FPM010"]
        assert all(v.path.endswith("consumer.py") for v in violations)

    def test_epoch_guarded_module_is_exempt_from_fpm011(self, tmp_path):
        violations = lint_project(
            tmp_path,
            {
                # The module that defines the epoch-guarded grammar may
                # touch its own tables; outside modules may not.
                "toygrammar.py": GRAMMAR_FIXTURE + textwrap.indent(
                    textwrap.dedent("""
                        def inspect(self, key):
                            return self.structures.probability(key)
                    """),
                    "        ",
                ),
                "outside.py": """
                    def peek(grammar, key):
                        return grammar.structures.probability(key)
                """,
            },
            select=["FPM011"],
        )
        assert [
            (v.rule_id, v.path.rsplit("/", 1)[-1]) for v in violations
        ] == [("FPM011", "outside.py")]


class TestSuppressions:
    def test_justified_suppression_silences_the_line(self):
        assert rule_ids_of("""
            def f():
                try:
                    return 1
                except:  # lint-ok: FPM006 -- exercised by a fixture
                    return 0
        """, select=["FPM006"]) == []

    def test_suppression_without_reason_is_reported(self):
        ids = rule_ids_of("""
            def f():
                try:
                    return 1
                except:  # lint-ok: FPM006
                    return 0
        """, select=["FPM006"])
        assert ids == ["FPM000", "FPM006"]

    def test_suppression_of_unknown_rule_is_reported(self):
        ids = rule_ids_of("""
            x = 1  # lint-ok: FPM999 -- no such rule
        """)
        assert "FPM000" in ids

    def test_suppression_only_covers_its_own_rule(self):
        ids = rule_ids_of("""
            def f():
                try:
                    return 1
                except:  # lint-ok: FPM001 -- wrong rule id
                    return 0
        """)
        assert "FPM006" in ids

    def test_marker_inside_string_is_not_a_suppression(self):
        ids = rule_ids_of("""
            def f():
                marker = "# lint-ok: FPM006 -- not a comment"
                try:
                    return marker
                except:
                    return 0
        """, select=["FPM006"])
        assert ids == ["FPM006"]


class TestSelectAndSyntax:
    def test_select_restricts_to_one_rule(self):
        snippet = textwrap.dedent("""
            def f(a=[]):
                try:
                    return a
                except:
                    return None
        """)
        violations = check_source(snippet, select=["FPM007"])
        assert {v.rule_id for v in violations} == {"FPM007"}

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            check_source("x = 1", select=["FPM777"])

    def test_unknown_select_names_rule_and_lists_valid_ids(self):
        from repro.analysis import UnknownRuleError

        with pytest.raises(UnknownRuleError) as excinfo:
            check_source("x = 1", select=["FPM999"])
        message = str(excinfo.value)
        assert "FPM999" in message
        assert "FPM001" in message and "FPM015" in message

    def test_unknown_select_is_usage_error_not_traceback(
        self, tmp_path, capsys
    ):
        # Satellite: ``--select FPM999`` must exit 2 with the valid-id
        # list on stderr — validated before any filesystem access.
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        assert run([str(path)], select="FPM999") == 2
        err = capsys.readouterr().err
        assert "FPM999" in err and "FPM001" in err
        # Even over a missing tree: validation happens first.
        assert run([str(tmp_path / "absent")], select="FPM999") == 2

    def test_unknown_select_via_cli(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        code = cli_main(["lint", "--select", "FPM999", str(path)])
        assert code == 2
        assert "FPM999" in capsys.readouterr().err

    def test_syntax_error_is_reported_not_raised(self):
        violations = check_source("def broken(:\n")
        assert [v.rule_id for v in violations] == ["FPM900"]


FIXTURE = textwrap.dedent("""\
    def public(value):
        try:
            return value
        except:
            return None
""")


class TestReporters:
    def test_text_report_golden(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        stream = io.StringIO()
        code = run([str(path)], output_format="text", stream=stream)
        assert code == 1
        assert stream.getvalue() == (
            f"{path}:1:1: FPM008 public function public() is missing "
            "a return annotation\n"
            f"{path}:1:1: FPM008 public function public() is missing "
            "parameter annotations: value\n"
            f"{path}:4:5: FPM006 bare except catches "
            "SystemExit/KeyboardInterrupt too; name the exceptions "
            "this path can actually handle\n"
            "3 violation(s) in 1 file checked\n"
        )

    def test_text_report_clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        stream = io.StringIO()
        code = run([str(path)], output_format="text", stream=stream)
        assert code == 0
        assert stream.getvalue() == "clean: 1 file checked\n"

    def test_json_report_structure(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        stream = io.StringIO()
        code = run([str(path)], output_format="json", stream=stream)
        assert code == 1
        payload = json.loads(stream.getvalue())
        assert payload["files_checked"] == 1
        assert payload["violation_count"] == 3
        assert payload["counts_by_rule"] == {"FPM006": 1, "FPM008": 2}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "column", "rule_id",
                              "message"}

    def test_json_report_round_trips(self, tmp_path):
        # The JSON envelope must carry exactly what lint_paths found.
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        stream = io.StringIO()
        run([str(path)], output_format="json", stream=stream)
        payload = json.loads(stream.getvalue())
        violations, files_checked = lint_paths([str(path)])
        assert payload["files_checked"] == files_checked
        assert payload["violations"] == [
            {
                "path": v.path,
                "line": v.line,
                "column": v.column,
                "rule_id": v.rule_id,
                "message": v.message,
            }
            for v in violations
        ]

    def test_sarif_report_schema_shape(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        stream = io.StringIO()
        code = run([str(path)], output_format="sarif", stream=stream)
        assert code == 1
        document = json.loads(stream.getvalue())
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (sarif_run,) = document["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert "informationUri" in driver
        rule_ids = [rule["id"] for rule in driver["rules"]]
        # Registry rules plus the two framework pseudo-rules.
        assert rule_ids[: len(all_rules())] == list(all_rules())
        assert "FPM000" in rule_ids and "FPM900" in rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"] == {"level": "error"}
        assert sarif_run["columnKind"] == "unicodeCodePoints"
        assert len(sarif_run["results"]) == 3
        for result in sarif_run["results"]:
            assert result["level"] == "error"
            assert result["message"]["text"]
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            (location,) = result["locations"]
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uri"]
            assert "\\" not in physical["artifactLocation"]["uri"]
            region = physical["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_sarif_clean_run_has_no_results(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        stream = io.StringIO()
        assert run(
            [str(path)], output_format="sarif", stream=stream
        ) == 0
        document = json.loads(stream.getvalue())
        assert document["runs"][0]["results"] == []

    def test_markdown_rule_table_lists_every_rule(self, capsys):
        code = cli_main(["lint", "--list-rules", "--format", "markdown"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines[0] == "| Rule | Name | Enforces |"
        body = lines[2:]
        assert [row.split("|")[1].strip() for row in body] == list(
            all_rules()
        )

    def test_markdown_without_list_rules_is_usage_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        code = cli_main(["lint", "--format", "markdown", str(path)])
        assert code == 2
        assert "markdown" in capsys.readouterr().err

    def test_unknown_format_is_usage_error(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        assert run([str(path)], output_format="xml") == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert run([str(tmp_path / "absent")]) == 2


class TestCli:
    def test_lint_subcommand_reports_and_fails(self, tmp_path, capsys):
        path = tmp_path / "fixture.py"
        path.write_text(FIXTURE)
        code = cli_main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{path}:4:5: FPM006" in out

    def test_lint_subcommand_clean_exit(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE: int = 1\n")
        assert cli_main(["lint", str(path)]) == 0
        assert "clean: 1 file checked" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out


class TestIncrementalCache:
    """The content-hash cache: hits, misses, and both invalidations."""

    FILES = {
        "alpha.py": 'VALUE: int = 1\n',
        "beta.py": FIXTURE,
    }

    def _write(self, tmp_path):
        for name, source in self.FILES.items():
            (tmp_path / name).write_text(source)

    def _lint(self, tmp_path, cache, **kwargs):
        from repro import obs

        with obs.session() as telemetry:
            violations, files = lint_paths(
                [str(tmp_path)], cache_path=str(cache), **kwargs
            )
            counters = telemetry.snapshot()["counters"]
        return violations, files, counters

    def test_warm_run_replays_identical_violations(self, tmp_path):
        self._write(tmp_path)
        cache = tmp_path / "cache.json"
        cold, files, cold_counters = self._lint(tmp_path, cache)
        assert cold_counters.get("lint.cache.miss") == files
        warm, _, warm_counters = self._lint(tmp_path, cache)
        assert warm == cold
        # Byte-identical tree -> the fully-warm fast path, no parsing.
        assert warm_counters.get("lint.cache.warm_run") == 1
        assert "lint.cache.miss" not in warm_counters

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        self._write(tmp_path)
        cache = tmp_path / "cache.json"
        self._lint(tmp_path, cache)
        # An edit that leaves the project index unchanged (no new
        # defs/imports/globals) so the sibling's per-file entry stays
        # valid; the bare except is a fresh violation that a stale
        # replay would miss.
        (tmp_path / "alpha.py").write_text(
            "VALUE: int = 1\ntry:\n    pass\nexcept:\n    pass\n"
        )
        violations, _, counters = self._lint(tmp_path, cache)
        assert "FPM006" in {v.rule_id for v in violations}
        assert counters.get("lint.cache.miss") == 1
        assert counters.get("lint.cache.hit") == len(self.FILES) - 1

    def test_any_content_change_is_never_replayed_stale(self, tmp_path):
        self._write(tmp_path)
        cache = tmp_path / "cache.json"
        cold, _, _ = self._lint(tmp_path, cache)
        (tmp_path / "alpha.py").write_text("def broken(:\n")
        violations, _, _ = self._lint(tmp_path, cache)
        assert "FPM900" in {v.rule_id for v in violations}
        assert violations != cold

    def test_rule_set_change_invalidates_the_run(self, tmp_path):
        self._write(tmp_path)
        cache = tmp_path / "cache.json"
        self._lint(tmp_path, cache, select=["FPM006"])
        violations, files, counters = self._lint(
            tmp_path, cache, select=["FPM008"]
        )
        # Different select -> different rule key -> no hits at all.
        assert "lint.cache.hit" not in counters
        assert counters.get("lint.cache.miss") == files
        assert {v.rule_id for v in violations} == {"FPM008"}

    def test_corrupt_cache_is_treated_as_cold(self, tmp_path):
        self._write(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        violations, files, counters = self._lint(tmp_path, cache)
        assert counters.get("lint.cache.miss") == files
        assert {v.rule_id for v in violations} == {"FPM006", "FPM008"}

    def test_parallel_run_matches_serial(self, tmp_path):
        self._write(tmp_path)
        serial, _ = lint_paths([str(tmp_path)])
        parallel, _ = lint_paths([str(tmp_path)], jobs=2)
        assert parallel == serial


class TestAutofix:
    """``repro lint --fix`` rewrites FPM007/FPM008 mechanically."""

    def test_fix_rewrites_mutable_default_and_return(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent('''
            """Module."""


            def collect(items, bucket=[]):
                """Gather."""
                bucket.extend(items)
                return bucket


            def announce(message: str):
                print(message)
        '''))
        code = cli_main(
            ["lint", "--select", "FPM007", str(path), "--fix"]
        )
        assert code == 0
        fixed = path.read_text()
        assert "bucket=None" in fixed
        assert "if bucket is None:" in fixed
        assert "bucket = []" in fixed
        # The rewrite parses and the FPM007 violation is gone for good.
        import ast as ast_module

        ast_module.parse(fixed)
        assert check_source(fixed, select=["FPM007"]) == []

    def test_fix_adds_none_return_annotation(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent('''
            def announce(message: str):
                print(message)
        '''))
        cli_main(["lint", "--select", "FPM008", str(path), "--fix"])
        assert "def announce(message: str) -> None:" in path.read_text()

    def test_fix_skips_value_returning_functions(self, tmp_path):
        path = tmp_path / "mod.py"
        source = textwrap.dedent('''
            def pick(value: int):
                return value
        ''')
        path.write_text(source)
        # Cannot infer the return type: report, do not rewrite.
        assert cli_main(
            ["lint", "--select", "FPM008", str(path), "--fix"]
        ) == 1
        assert path.read_text() == source


class TestRepoIsClean:
    def test_src_repro_is_lint_clean(self):
        violations, files_checked = lint_paths([str(SRC_ROOT)])
        assert files_checked > 60
        assert violations == []

    def test_whole_repo_is_lint_clean_under_profiles(self):
        # The extended surface lints under the relaxed profile for
        # tests/benchmarks/tools/examples and strict for src.
        repo = SRC_ROOT.parents[1]
        targets = [
            str(repo / name)
            for name in ("src/repro", "tests", "benchmarks", "tools",
                         "examples")
            if (repo / name).exists()
        ]
        violations, files_checked = lint_paths(targets)
        assert files_checked > 150
        assert violations == []

    def test_repo_suppressions_all_carry_justifications(self):
        # apply_suppressions already enforces this (FPM000), but assert
        # it end-to-end so a framework regression cannot mask it.
        from repro.analysis import find_suppressions
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for suppression in find_suppressions(path.read_text()):
                assert suppression.reason, (
                    f"{path}:{suppression.line} suppression has no "
                    "justification"
                )
