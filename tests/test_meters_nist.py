"""Unit tests for the NIST SP-800-63 entropy meter."""

import pytest

from repro.meters.nist import NISTMeter, nist_entropy


class TestEntropyFormula:
    def test_empty(self):
        assert nist_entropy("") == 0.0

    def test_first_character(self):
        assert nist_entropy("a") == 4.0

    def test_characters_two_to_eight(self):
        # 4 + 7 * 2 = 18 bits for an 8-char lower-case password.
        assert nist_entropy("password") == 18.0

    def test_characters_nine_to_twenty(self):
        # 18 + 1.5 per char beyond 8.
        assert nist_entropy("a" * 12) == 18.0 + 1.5 * 4

    def test_characters_beyond_twenty(self):
        assert nist_entropy("a" * 22) == 18.0 + 1.5 * 12 + 1.0 * 2

    def test_composition_bonus(self):
        # Upper case + non-alphabetic earns 6 bits.
        assert nist_entropy("Passw0rd") == 18.0 + 6.0

    def test_composition_bonus_requires_both(self):
        assert nist_entropy("Password") == 18.0     # upper only
        assert nist_entropy("passw0rd") == 18.0     # non-alpha only

    def test_composition_bonus_disabled(self):
        assert nist_entropy("Passw0rd", composition_bonus=False) == 18.0

    def test_dictionary_bonus(self):
        dictionary = {"password"}
        assert nist_entropy("password", dictionary) == 18.0
        assert nist_entropy("pQzwxyzr", dictionary) == 18.0 + 6.0

    def test_dictionary_bonus_stops_at_twenty(self):
        dictionary = {"password"}
        long_password = "b" * 20
        assert nist_entropy(long_password, dictionary) == (
            4 + 2 * 7 + 1.5 * 12
        )


class TestMeter:
    def test_probability_monotone_in_entropy(self):
        meter = NISTMeter()
        assert meter.probability("abc") > meter.probability("abcdefgh")

    def test_dictionary_lookup_case_insensitive(self):
        # PASSWORD lowercases to a dictionary word, so it earns no
        # dictionary bonus; it has upper-case letters but no
        # non-alphabetic character, so no composition bonus either.
        # Both spellings therefore score the same 18 bits.
        meter = NISTMeter(dictionary={"password"})
        assert meter.entropy("PASSWORD") == pytest.approx(
            meter.entropy("password")
        )

    def test_same_length_same_entropy_without_bonuses(self):
        meter = NISTMeter()
        assert meter.entropy("aaaaaaaa") == meter.entropy("zxqwvbnm")

    def test_paper_motivating_examples(self):
        # The NIST meter cannot distinguish password123 from a random
        # 11-char string — the paper's core criticism of rule-based
        # meters.
        meter = NISTMeter()
        assert meter.entropy("password123") == meter.entropy("kqzwxcvbnmj")
