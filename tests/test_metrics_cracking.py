"""Unit tests for cracking curves and guess-number scatter data."""

import math
import random

import pytest

from repro.core import FuzzyPSM
from repro.datasets.corpus import PasswordCorpus
from repro.metrics.cracking import (
    cracking_curve,
    guess_number_scatter,
    scatter_accuracy,
    underivable_fraction,
    CrackPoint,
    ScatterPoint,
)
from repro.metrics.guessnumber import MonteCarloEstimator


def _stream(pairs):
    return iter(pairs)


class TestCrackingCurve:
    @pytest.fixture()
    def test_corpus(self):
        return PasswordCorpus({"aaa": 5, "bbb": 3, "ccc": 2})

    def test_progression(self, test_corpus):
        guesses = _stream([("aaa", 0.5), ("xxx", 0.3), ("bbb", 0.2)])
        points = cracking_curve(guesses, test_corpus, [1, 2, 3])
        assert points == [
            CrackPoint(1, 0.5),
            CrackPoint(2, 0.5),
            CrackPoint(3, 0.8),
        ]

    def test_duplicates_skipped(self, test_corpus):
        guesses = _stream([("aaa", 0.5), ("aaa", 0.5), ("bbb", 0.2)])
        points = cracking_curve(guesses, test_corpus, [2])
        # The duplicate does not consume a guess slot.
        assert points == [CrackPoint(2, 0.8)]

    def test_stream_exhaustion(self, test_corpus):
        guesses = _stream([("aaa", 0.5)])
        points = cracking_curve(guesses, test_corpus, [1, 100])
        assert points[0].cracked_fraction == points[1].cracked_fraction

    def test_monotone_nondecreasing(self, test_corpus):
        guesses = _stream(
            [("x1", 0.9), ("aaa", 0.5), ("x2", 0.4), ("ccc", 0.3),
             ("bbb", 0.2)]
        )
        points = cracking_curve(guesses, test_corpus, [1, 2, 3, 4, 5])
        values = [p.cracked_fraction for p in points]
        assert values == sorted(values)

    def test_validation(self, test_corpus):
        with pytest.raises(ValueError):
            cracking_curve(_stream([]), test_corpus, [])
        with pytest.raises(ValueError):
            cracking_curve(_stream([]), test_corpus, [0])
        with pytest.raises(ValueError):
            cracking_curve(_stream([]), PasswordCorpus([]), [1])


class TestScatterPoints:
    def test_log_error(self):
        point = ScatterPoint("pw", ideal_rank=100,
                             model_guess_number=1000.0)
        assert point.log_error == pytest.approx(1.0)

    def test_log_error_infinite(self):
        point = ScatterPoint("pw", ideal_rank=5,
                             model_guess_number=math.inf)
        assert point.log_error == math.inf

    def test_scatter_accuracy(self):
        points = [
            ScatterPoint("a", 10, 100.0),    # error 1
            ScatterPoint("b", 10, 10.0),     # error 0
            ScatterPoint("c", 10, math.inf),  # excluded
        ]
        assert scatter_accuracy(points) == pytest.approx(0.5)

    def test_underivable_fraction(self):
        points = [
            ScatterPoint("a", 1, 1.0),
            ScatterPoint("b", 2, math.inf),
        ]
        assert underivable_fraction(points) == pytest.approx(0.5)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            scatter_accuracy([])
        with pytest.raises(ValueError):
            underivable_fraction([])
        with pytest.raises(ValueError):
            scatter_accuracy([ScatterPoint("a", 1, math.inf)])


class TestScatterEndToEnd:
    def test_fig10_style_run(self):
        counts = {"password": 50, "123456": 40, "dragon": 10,
                  "letmein": 5, "zxqvkm": 1}
        corpus = PasswordCorpus(counts, name="toy")
        meter = FuzzyPSM.train(
            base_dictionary=list(counts), training=list(counts.items())
        )
        estimator = MonteCarloEstimator(
            meter, sample_size=3_000, rng=random.Random(0)
        )
        points = guess_number_scatter(estimator, meter, corpus,
                                      max_rank=4)
        assert len(points) == 4
        assert points[0].password == "password"
        assert points[0].ideal_rank == 1
        # A well-trained meter on its own training head should sit near
        # the diagonal.
        assert scatter_accuracy(points) < 1.5
