"""Tests for the array-backed binary model format (FPSMBIN1).

The binary format exists so corpus-scale models load through one
``mmap`` + zero-copy integer casts instead of a JSON parse.  It must
be a pure re-encoding: loading a binary model yields the same meter —
bit for bit, down to count-table insertion order — as the JSON path,
and a hostile or truncated file must fail with a diagnostic
``ValueError``, never a crash or a silently wrong model.
"""

import json
import struct

import pytest

from repro.core import FuzzyPSM
from repro.persistence import (
    BINARY_FORMAT_VERSION,
    BINARY_MAGIC,
    load_meter,
    save_meter,
)

PASSWORDS = [
    "password", "password", "password123", "Password123", "p@ssw0rd",
    "123456", "123456", "DRAGON1", "1nogard", "letmein!", "qwerty12",
]

PROBES = ["password", "password123", "P@ssw0rd9", "dragon1", "zzz!!!"]


@pytest.fixture(scope="module")
def fuzzy():
    return FuzzyPSM.train(base_dictionary=PASSWORDS, training=PASSWORDS)


@pytest.fixture()
def binary_path(fuzzy, tmp_path):
    path = str(tmp_path / "fuzzy.bin")
    save_meter(fuzzy, path, fmt="binary")
    return path


class TestRoundTrip:
    def test_scores_survive(self, fuzzy, binary_path):
        loaded = load_meter(binary_path)
        assert isinstance(loaded, FuzzyPSM)
        for probe in PROBES:
            assert loaded.probability(probe) == fuzzy.probability(probe)

    def test_model_dict_survives_byte_exactly(self, fuzzy, binary_path):
        # The binary format keeps count-table insertion order exactly
        # (the JSON file re-sorts keys on disk), so the loaded meter's
        # snapshot must reproduce the original's serialised bytes.
        via_binary = load_meter(binary_path)
        assert json.dumps(via_binary.to_dict()) == json.dumps(
            fuzzy.to_dict()
        )

    def test_agrees_with_json_path(self, fuzzy, binary_path, tmp_path):
        json_path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, json_path, fmt="json")
        via_json = load_meter(json_path)
        via_binary = load_meter(binary_path)
        # Same model content (dict equality is order-insensitive) and
        # identical scores either way.
        assert via_binary.to_dict() == via_json.to_dict()
        for probe in PROBES:
            assert via_binary.probability(probe) == via_json.probability(
                probe
            )

    def test_save_load_save_is_byte_identical(self, binary_path,
                                              tmp_path):
        second = str(tmp_path / "again.bin")
        save_meter(load_meter(binary_path), second, fmt="binary")
        with open(binary_path, "rb") as handle:
            original = handle.read()
        with open(second, "rb") as handle:
            round_tripped = handle.read()
        assert round_tripped == original

    def test_loaded_meter_still_updates(self, binary_path):
        loaded = load_meter(binary_path)
        before = loaded.probability("brandnew99")
        loaded.update("brandnew99", count=5)
        assert loaded.probability("brandnew99") > before

    def test_extensions_survive(self, tmp_path):
        from repro.core.meter import FuzzyPSMConfig
        meter = FuzzyPSM.train(
            PASSWORDS, PASSWORDS,
            config=FuzzyPSMConfig(allow_reverse=True, allow_allcaps=True),
        )
        path = str(tmp_path / "ext.bin")
        save_meter(meter, path, fmt="binary")
        loaded = load_meter(path)
        assert loaded.config.allow_reverse
        assert loaded.config.allow_allcaps
        assert json.dumps(loaded.to_dict()) == json.dumps(meter.to_dict())


class TestFormat:
    def test_magic_and_header(self, binary_path):
        with open(binary_path, "rb") as handle:
            blob = handle.read()
        assert blob.startswith(BINARY_MAGIC)
        header_length = struct.unpack(
            "<Q", blob[len(BINARY_MAGIC):len(BINARY_MAGIC) + 8]
        )[0]
        start = len(BINARY_MAGIC) + 8
        header = json.loads(blob[start:start + header_length])
        assert header["binary_format_version"] == BINARY_FORMAT_VERSION
        assert header["kind"] == "fuzzypsm"
        assert {section["name"] for section in header["sections"]} >= {
            "base_blob", "base_lens", "structure_counts",
            "terminal_blob", "terminal_counts", "booleans", "leet",
        }

    def test_sections_are_aligned(self, binary_path):
        with open(binary_path, "rb") as handle:
            blob = handle.read()
        start = len(BINARY_MAGIC) + 8
        header_length = struct.unpack(
            "<Q", blob[len(BINARY_MAGIC):start]
        )[0]
        header = json.loads(blob[start:start + header_length])
        for section in header["sections"]:
            assert section["offset"] % 8 == 0, section

    def test_load_meter_sniffs_format(self, fuzzy, tmp_path):
        # Same extension, different encodings: dispatch is by content.
        json_path = str(tmp_path / "a.model")
        binary_path = str(tmp_path / "b.model")
        save_meter(fuzzy, json_path)
        save_meter(fuzzy, binary_path, fmt="binary")
        assert isinstance(load_meter(json_path), FuzzyPSM)
        assert isinstance(load_meter(binary_path), FuzzyPSM)

    def test_unknown_format_rejected(self, fuzzy, tmp_path):
        with pytest.raises(ValueError, match="unknown model format"):
            save_meter(fuzzy, str(tmp_path / "x"), fmt="msgpack")

    def test_non_binary_persistable_meter_rejected(self, tmp_path):
        from repro.meters.pcfg import PCFGMeter
        meter = PCFGMeter.train(PASSWORDS)
        with pytest.raises(TypeError, match="binary"):
            save_meter(meter, str(tmp_path / "pcfg.bin"), fmt="binary")


def _corrupt(path: str, tmp_path, blob: bytes) -> str:
    out = str(tmp_path / "corrupt.bin")
    with open(out, "wb") as handle:
        handle.write(blob)
    return out


class TestErrorPaths:
    def _bytes(self, binary_path) -> bytes:
        with open(binary_path, "rb") as handle:
            return handle.read()

    @pytest.mark.parametrize("cut", ["magic", "header_len", "header",
                                     "payload"])
    def test_truncations_rejected(self, binary_path, tmp_path, cut):
        blob = self._bytes(binary_path)
        stop = {
            "magic": 4,
            "header_len": len(BINARY_MAGIC) + 3,
            "header": len(BINARY_MAGIC) + 8 + 10,
            "payload": len(blob) - 5,
        }[cut]
        path = _corrupt(binary_path, tmp_path, blob[:stop])
        with pytest.raises(ValueError, match="not a valid"):
            load_meter(path)

    def test_empty_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.bin")
        open(path, "wb").close()
        with pytest.raises(ValueError):
            load_meter(path)

    def test_garbage_header_rejected(self, binary_path, tmp_path):
        blob = self._bytes(binary_path)
        start = len(BINARY_MAGIC) + 8
        mangled = blob[:start] + b"\xff" * 16 + blob[start + 16:]
        path = _corrupt(binary_path, tmp_path, mangled)
        with pytest.raises(ValueError, match="not a valid"):
            load_meter(path)

    def test_future_binary_version_rejected(self, binary_path,
                                            tmp_path):
        blob = self._bytes(binary_path)
        start = len(BINARY_MAGIC) + 8
        header_length = struct.unpack(
            "<Q", blob[len(BINARY_MAGIC):start]
        )[0]
        header = json.loads(blob[start:start + header_length])
        header["binary_format_version"] = 9
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        # Same digit count as the real version: the byte length (and
        # with it every section offset) stays put.
        new_header = new_header.ljust(header_length, b" ")
        assert len(new_header) == header_length
        mangled = (blob[:len(BINARY_MAGIC)]
                   + struct.pack("<Q", header_length)
                   + new_header + blob[start + header_length:])
        path = _corrupt(binary_path, tmp_path, mangled)
        with pytest.raises(ValueError, match="version"):
            load_meter(path)

    def test_json_loader_still_rejects_json_garbage(self, tmp_path):
        path = str(tmp_path / "garbage.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(ValueError):
            load_meter(path)
