"""Multi-model serving: registry, routing, and per-model hot reload.

One ``ReproServer`` hosts several trained models behind a ``model=``
request parameter (DESIGN.md §16): each model gets its own worker pool
attached to its own shared-memory segment, its own micro-batcher, and
its own ``/accept`` lifecycle.  These tests are black-box over HTTP,
plus unit coverage of :class:`repro.serve.SnapshotRegistry`.
"""

from __future__ import annotations

import pytest

from repro.core.meter import FuzzyPSM
from repro.serve import ReproServer, ServeConfig, SnapshotRegistry

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS
from tests.serve_utils import one_shot, run, train_serve_meter

#: Training list for the second model — overlapping head, different
#: tail, so the two models score shared probes differently.
ALT_TRAINING = [
    "password", "password", "dragon99", "dragon99", "Dragon99",
    "qwerty", "qwerty", "qwerty123", "monkey", "m0nkey",
    "letmein", "letmein", "iloveyou", "111111", "111111",
]

#: Scored by both models; both derive them with nonzero probability.
SHARED_PROBES = ["password", "qwerty12", "monkey99", "iloveyou1"]


def _train_alt() -> FuzzyPSM:
    return FuzzyPSM.train(list(BASE_DICTIONARY), list(ALT_TRAINING))


def _registry() -> SnapshotRegistry:
    return (
        SnapshotRegistry()
        .add("rockyou", train_serve_meter())
        .add("corporate", _train_alt())
    )


class TestSnapshotRegistry:
    def test_add_resolve_and_default(self):
        registry = _registry()
        assert registry.names() == ("rockyou", "corporate")
        assert registry.default_name == "rockyou"
        assert len(registry) == 2
        assert "corporate" in registry
        name, meter = registry.resolve(None)
        assert name == "rockyou"
        assert registry.resolve("corporate")[0] == "corporate"

    def test_duplicate_and_invalid_names_rejected(self):
        registry = SnapshotRegistry().add("m", train_serve_meter())
        with pytest.raises(ValueError, match="duplicate model name"):
            registry.add("m", train_serve_meter())
        for bad in ("", "-leading", "has space", "a/b"):
            with pytest.raises(ValueError):
                registry.add(bad, train_serve_meter())

    def test_unknown_model_and_empty_registry(self):
        registry = _registry()
        with pytest.raises(KeyError, match="corporate"):
            registry.resolve("nope")
        with pytest.raises(ValueError):
            SnapshotRegistry().default_name

    def test_single_wraps_a_bare_meter(self):
        registry = SnapshotRegistry.single(train_serve_meter())
        assert registry.names() == ("default",)


class TestMultiModelRouting:
    """Inline scoring (workers=0): routing semantics only."""

    def test_query_body_and_default_routing(self):
        registry = _registry()
        reference = {
            name: {pw: meter.probability(pw) for pw in SHARED_PROBES}
            for name, meter in registry.items()
        }
        # The probe set must genuinely separate the two models.
        assert reference["rockyou"] != reference["corporate"]

        async def main():
            server = ReproServer(registry, ServeConfig())
            await server.start()
            try:
                port = server.port
                for probe in SHARED_PROBES:
                    # No parameter: default (first-registered) model.
                    _, plain = await one_shot(
                        port, "POST", "/check", {"password": probe}
                    )
                    assert plain["model"] == "rockyou"
                    assert plain["probability"] == reference[
                        "rockyou"
                    ][probe]
                    # Body field routes.
                    _, via_body = await one_shot(
                        port, "POST", "/check",
                        {"password": probe, "model": "corporate"},
                    )
                    assert via_body["model"] == "corporate"
                    assert via_body["probability"] == reference[
                        "corporate"
                    ][probe]
                    # Query parameter routes — and beats the body.
                    _, via_query = await one_shot(
                        port, "POST", "/check?model=corporate",
                        {"password": probe, "model": "rockyou"},
                    )
                    assert via_query["model"] == "corporate"
                    assert via_query["probability"] == reference[
                        "corporate"
                    ][probe]
            finally:
                await server.stop()

        run(main())

    def test_unknown_model_is_a_client_error(self):
        async def main():
            server = ReproServer(_registry(), ServeConfig())
            await server.start()
            try:
                status, payload = await one_shot(
                    server.port, "POST", "/check?model=absent",
                    {"password": "password"},
                )
                assert status == 400
                assert "absent" in payload["error"]
                assert "rockyou" in payload["error"]
                status, payload = await one_shot(
                    server.port, "POST", "/check",
                    {"password": "password", "model": 7},
                )
                assert status == 400
            finally:
                await server.stop()

        run(main())


class TestMultiModelLifecycle:
    """Worker pools per model, per-model hot reload (ISSUE acceptance)."""

    def test_per_model_accept_swaps_only_that_model(self):
        registry = _registry()
        epochs = {
            name: meter.grammar.epoch
            for name, meter in registry.items()
        }
        post_meter = FuzzyPSM.from_dict(
            dict(registry.resolve("corporate")[1].to_dict())
        )
        post_meter.update("zebra42!", 50)
        post_reference = post_meter.probability("zebra42!")

        async def main():
            config = ServeConfig(workers=1, batch_window=0.001)
            server = ReproServer(registry, config)
            await server.start()
            try:
                port = server.port
                _, before = await one_shot(
                    port, "POST", "/check?model=corporate",
                    {"password": "zebra42!"},
                )
                # Hot-swap only the corporate model.
                status, accepted = await one_shot(
                    port, "POST", "/accept?model=corporate",
                    {"password": "zebra42!", "count": 50},
                )
                assert status == 200
                assert accepted["model"] == "corporate"
                assert accepted["epoch"] == epochs["corporate"] + 1
                _, after = await one_shot(
                    port, "POST", "/check?model=corporate",
                    {"password": "zebra42!"},
                )
                assert after["epoch"] == epochs["corporate"] + 1
                assert after["probability"] == post_reference
                assert after["probability"] != before["probability"]
                # The sibling model is untouched: same epoch, and its
                # workers still score against the old segment.
                _, sibling = await one_shot(
                    port, "POST", "/check?model=rockyou",
                    {"password": "zebra42!"},
                )
                assert sibling["epoch"] == epochs["rockyou"]
                # Health and metrics expose the per-model breakdown.
                status, health = await one_shot(
                    port, "GET", "/healthz"
                )
                assert status == 200
                assert set(health["models"]) == {
                    "rockyou", "corporate"
                }
                assert health["models"]["corporate"]["epoch"] == \
                    epochs["corporate"] + 1
                assert health["models"]["rockyou"]["epoch"] == \
                    epochs["rockyou"]
                _, metrics = await one_shot(port, "GET", "/metrics")
                assert set(metrics["models"]) == {
                    "rockyou", "corporate"
                }
            finally:
                await server.stop()

        run(main())

    def test_worker_mode_validates_every_model(self):
        from repro.meters.nist import NISTMeter

        registry = SnapshotRegistry().add(
            "fuzzy", train_serve_meter()
        ).add("nist", NISTMeter())
        with pytest.raises(ValueError, match="nist"):
            ReproServer(registry, ServeConfig(workers=1))
