"""Cross-meter adaptivity tests.

The paper notes that the PSMs of [33] (Markov) and [34] (PCFG) share
fuzzyPSM's update capability ("The two PSMs in [33], [34] also provide
this feature", Sec. IV-C).  All three trained meters in this library
therefore expose ``observe``/``accept`` with the same semantics:
counts shift towards the new observations and the measured
probabilities follow.
"""

import pytest

from repro.core import FuzzyPSM
from repro.meters.markov import MarkovMeter, Smoothing
from repro.meters.pcfg import PCFGMeter

TRAINING = [
    "password", "password", "password123", "123456", "123456",
    "dragon1", "iloveyou", "sunshine9", "qwerty12",
]


def make_meters():
    return [
        FuzzyPSM.train(base_dictionary=TRAINING, training=TRAINING),
        PCFGMeter.train(TRAINING),
        MarkovMeter.train(TRAINING, order=2,
                          smoothing=Smoothing.LAPLACE),
    ]


def observe(meter, password, count=1):
    if isinstance(meter, FuzzyPSM):
        meter.accept(password, count)
    else:
        meter.observe(password, count)


class TestUpdateSemantics:
    @pytest.mark.parametrize("index", [0, 1, 2],
                             ids=["fuzzyPSM", "PCFG", "Markov"])
    def test_observed_password_gains_probability(self, index):
        meter = make_meters()[index]
        target = "newtrend7"
        before = meter.probability(target)
        observe(meter, target, count=20)
        assert meter.probability(target) > before

    @pytest.mark.parametrize("index", [0, 1, 2],
                             ids=["fuzzyPSM", "PCFG", "Markov"])
    def test_update_is_weighted(self, index):
        lightly = make_meters()[index]
        heavily = make_meters()[index]
        observe(lightly, "newtrend7", count=1)
        observe(heavily, "newtrend7", count=50)
        assert (
            heavily.probability("newtrend7")
            >= lightly.probability("newtrend7")
        )

    @pytest.mark.parametrize("index", [0, 1, 2],
                             ids=["fuzzyPSM", "PCFG", "Markov"])
    def test_other_passwords_dilute(self, index):
        """Mass is conserved: pushing a new password up must pull the
        rest of the distribution down (or hold it, never raise it)."""
        meter = make_meters()[index]
        before = meter.probability("password")
        observe(meter, "zzunrelated1", count=50)
        assert meter.probability("password") <= before

    @pytest.mark.parametrize("index", [0, 1, 2],
                             ids=["fuzzyPSM", "PCFG", "Markov"])
    def test_empty_update_rejected(self, index):
        meter = make_meters()[index]
        with pytest.raises(ValueError):
            observe(meter, "")


class TestAdaptivityParity:
    def test_all_meters_track_the_same_trend(self):
        """The paper's adaptive-meter story: after a fad password
        floods registrations, every learned meter must flag it weak
        (higher probability than a rare-but-ordinary password)."""
        fad = "eurocup2026"
        rare = "ordinary42x"
        for meter in make_meters():
            observe(meter, rare, count=1)
            observe(meter, fad, count=100)
            assert meter.probability(fad) > meter.probability(rare), (
                meter.name
            )
