"""Unit tests for corpus statistics (Tables VIII-X, Fig. 12)."""

import pytest

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.stats import (
    composition_table,
    length_table,
    overlap_curve,
    overlap_fraction,
    summary_row,
    top_k_table,
)


@pytest.fixture()
def corpus():
    return PasswordCorpus(
        {
            "123456": 10,
            "password": 5,
            "Password1": 3,
            "p@ss": 2,
        },
        name="toy", service="forum", location="USA", language="English",
    )


class TestTopK:
    def test_table_and_share(self, corpus):
        table, share = top_k_table(corpus, k=2)
        assert table == [("123456", 10), ("password", 5)]
        assert share == pytest.approx(15 / 20)

    def test_k_larger_than_corpus(self, corpus):
        table, share = top_k_table(corpus, k=100)
        assert len(table) == 4
        assert share == pytest.approx(1.0)


class TestComposition:
    def test_digit_only_fraction(self, corpus):
        fractions = composition_table(corpus)
        assert fractions["^[0-9]+$"] == pytest.approx(10 / 20)

    def test_lower_only_fraction(self, corpus):
        fractions = composition_table(corpus)
        assert fractions["^[a-z]+$"] == pytest.approx(5 / 20)

    def test_alnum_fraction(self, corpus):
        fractions = composition_table(corpus)
        # Everything except "p@ss".
        assert fractions["^[a-zA-Z0-9]+$"] == pytest.approx(18 / 20)

    def test_substring_classes(self, corpus):
        fractions = composition_table(corpus)
        # Contains a lower-case letter: all but "123456".
        assert fractions["[a-z]"] == pytest.approx(10 / 20)
        # Contains an upper-case letter: only "Password1".
        assert fractions["[A-Z]"] == pytest.approx(3 / 20)

    def test_letters_then_digits(self, corpus):
        fractions = composition_table(corpus)
        assert fractions["^[a-zA-Z]+[0-9]+$"] == pytest.approx(3 / 20)


class TestLengths:
    def test_buckets(self, corpus):
        fractions = length_table(corpus)
        assert fractions["6"] == pytest.approx(10 / 20)   # 123456
        assert fractions["8"] == pytest.approx(5 / 20)    # password
        assert fractions["9"] == pytest.approx(3 / 20)    # Password1
        assert fractions["1-5"] == pytest.approx(2 / 20)  # p@ss

    def test_sums_to_one(self, corpus):
        assert sum(length_table(corpus).values()) == pytest.approx(1.0)


class TestOverlap:
    def test_full_overlap(self, corpus):
        assert overlap_fraction(corpus, corpus) == 1.0

    def test_no_overlap(self, corpus):
        other = PasswordCorpus(["entirely", "different"])
        assert overlap_fraction(corpus, other) == 0.0

    def test_partial_overlap(self, corpus):
        other = PasswordCorpus(["123456", "password", "newpw"])
        assert overlap_fraction(corpus, other) == pytest.approx(2 / 4)

    def test_asymmetry(self, corpus):
        other = PasswordCorpus(["123456"])
        assert overlap_fraction(other, corpus) == 1.0
        assert overlap_fraction(corpus, other) == pytest.approx(1 / 4)

    def test_top_k_restriction(self, corpus):
        other = PasswordCorpus({"p@ss": 9, "123456": 1})
        # Top-1 of corpus is 123456; top-1 of other is p@ss.
        assert overlap_fraction(corpus, other, k=1) == 0.0
        assert overlap_fraction(corpus, other, k=2) == pytest.approx(0.5)

    def test_negative_k_rejected(self, corpus):
        with pytest.raises(ValueError):
            overlap_fraction(corpus, corpus, k=-1)

    def test_overlap_curve(self, corpus):
        other = PasswordCorpus({"123456": 5, "zzz": 1})
        curve = overlap_curve(corpus, other, thresholds=[1, 2])
        assert curve[0] == (1, 1.0)
        assert curve[1][0] == 2

    def test_empty_corpus_overlap(self):
        empty = PasswordCorpus([])
        other = PasswordCorpus(["x"])
        assert overlap_fraction(empty, other) == 0.0


class TestSummaryRow:
    def test_fields(self, corpus):
        row = summary_row(corpus)
        assert row == {
            "dataset": "toy",
            "service": "forum",
            "location": "USA",
            "language": "English",
            "unique": 4,
            "total": 20,
        }
