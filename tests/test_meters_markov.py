"""Unit tests for the Markov meter (orders, smoothing, enumeration)."""

import math
import random

import pytest

from repro.meters.markov import END, MarkovMeter, Smoothing


@pytest.fixture(scope="module")
def mle_meter():
    return MarkovMeter.train(
        ["password", "password", "passage"], order=2,
        smoothing=Smoothing.NONE,
    )


class TestConstruction:
    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MarkovMeter(order=0)

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            MarkovMeter(discount=1.5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MarkovMeter(laplace_alpha=0.0)

    def test_observe_empty_rejected(self):
        with pytest.raises(ValueError):
            MarkovMeter().observe("")


class TestMLE:
    def test_seen_beats_unseen(self, mle_meter):
        assert mle_meter.probability("password") > 0
        assert mle_meter.probability("zzzz") == 0.0

    def test_more_frequent_scores_higher(self, mle_meter):
        assert (
            mle_meter.probability("password")
            > mle_meter.probability("passage")
        )

    def test_distribution_sums_to_one(self):
        # With the END symbol the model is a proper distribution; on a
        # tiny closed training set the seen strings' masses sum <= 1.
        meter = MarkovMeter.train(["ab", "ab", "ac"], order=1,
                                  smoothing=Smoothing.NONE)
        total = sum(
            meter.probability(s) for s in ("ab", "ac", "a", "b", "c")
        )
        assert total <= 1.0 + 1e-12
        assert meter.probability("ab") == pytest.approx(2 / 3)

    def test_empty_and_overlong_passwords(self, mle_meter):
        assert mle_meter.probability("") == 0.0
        assert mle_meter.probability("a" * 100) == 0.0


class TestLaplace:
    def test_unseen_gets_positive_probability(self):
        meter = MarkovMeter.train(["password"], order=2,
                                  smoothing=Smoothing.LAPLACE)
        assert meter.probability("zzzz") > 0.0

    def test_seen_still_preferred(self):
        meter = MarkovMeter.train(["password"] * 10, order=2,
                                  smoothing=Smoothing.LAPLACE)
        assert meter.probability("password") > meter.probability("zzzzzzzz")

    def test_transition_normalised(self):
        meter = MarkovMeter.train(["abc"], order=1,
                                  smoothing=Smoothing.LAPLACE)
        alphabet = meter._alphabet + [END]
        total = sum(
            meter.transition_probability("a", ch) for ch in alphabet
        )
        assert total == pytest.approx(1.0)


class TestBackoff:
    def test_unseen_context_backs_off(self):
        meter = MarkovMeter.train(["password"], order=3,
                                  smoothing=Smoothing.BACKOFF)
        # "zwor" never appears as a context; backing off to "wor"/"or"
        # still yields mass for the 'd'.
        assert meter.transition_probability("zwo", "r") > 0.0

    def test_transition_normalised(self):
        meter = MarkovMeter.train(["password", "passage", "pass"],
                                  order=2, smoothing=Smoothing.BACKOFF)
        alphabet = meter._alphabet + [END]
        for context in ("pa", "ss", "zz"):
            total = sum(
                meter.transition_probability(context, ch)
                for ch in alphabet
            )
            assert total == pytest.approx(1.0), context

    def test_seen_dominates(self):
        meter = MarkovMeter.train(["password"] * 20, order=2,
                                  smoothing=Smoothing.BACKOFF)
        assert meter.probability("password") > 0.1


class TestGoodTuring:
    def test_probabilities_positive_for_seen(self):
        meter = MarkovMeter.train(["password", "passage"], order=2,
                                  smoothing=Smoothing.GOOD_TURING)
        assert meter.probability("password") > 0.0

    def test_unseen_successor_gets_missing_mass(self):
        meter = MarkovMeter.train(["ab", "ac"], order=1,
                                  smoothing=Smoothing.GOOD_TURING)
        assert meter.transition_probability("a", "z") > 0.0

    def test_sampling_not_supported(self):
        meter = MarkovMeter.train(["password"], order=1,
                                  smoothing=Smoothing.GOOD_TURING)
        with pytest.raises(NotImplementedError):
            meter.sample(random.Random(0))


class TestSampling:
    @pytest.mark.parametrize("smoothing", [
        Smoothing.NONE, Smoothing.LAPLACE, Smoothing.BACKOFF,
    ])
    def test_sample_matches_measure(self, smoothing):
        meter = MarkovMeter.train(
            ["password", "passage", "pass123", "dragon"],
            order=2, smoothing=smoothing,
        )
        rng = random.Random(7)
        for _ in range(40):
            password, probability = meter.sample(rng)
            assert meter.probability(password) == pytest.approx(
                probability, rel=1e-9
            ), password

    def test_sample_untrained_raises(self):
        with pytest.raises(ValueError):
            MarkovMeter().sample(random.Random(0))


class TestEnumeration:
    def test_guesses_unique_and_within_band_order(self):
        meter = MarkovMeter.train(
            ["password", "password", "passage", "dragon"],
            order=2, smoothing=Smoothing.NONE,
        )
        guesses = list(meter.iter_guesses(limit=100))
        strings = [g for g, _ in guesses]
        assert len(strings) == len(set(strings))
        assert "password" in strings[:5]

    def test_guess_probabilities_match_measure(self):
        meter = MarkovMeter.train(
            ["password", "passage"], order=2, smoothing=Smoothing.NONE,
        )
        for guess, probability in meter.iter_guesses(limit=30):
            assert meter.probability(guess) == pytest.approx(probability)

    def test_banded_enumeration_is_globally_descending(self):
        # Bands partition [0, 1) into [r^(k+1), r^k) intervals and are
        # sorted internally, so the whole stream is descending.
        meter = MarkovMeter.train(
            ["abc", "abd", "acc", "abc"], order=1, smoothing=Smoothing.NONE,
        )
        probs = [p for _, p in meter.iter_guesses(limit=50)]
        assert probs == sorted(probs, reverse=True)

    def test_invalid_band_ratio(self):
        meter = MarkovMeter.train(["abc"], order=1)
        with pytest.raises(ValueError):
            list(meter.iter_guesses(limit=1, band_ratio=1.5))

    def test_untrained_yields_nothing(self):
        assert list(MarkovMeter().iter_guesses(limit=5)) == []
