"""Tests for the Table-I guessing-attack taxonomy."""

from repro.experiments.taxonomy import (
    GUESSING_ATTACKS,
    online_guess_budget,
)


class TestTableI:
    def test_four_rows(self):
        assert len(GUESSING_ATTACKS) == 4

    def test_families_and_channels(self):
        cells = {(a.family, a.channel) for a in GUESSING_ATTACKS}
        assert cells == {
            ("Trawling", "Online"), ("Trawling", "Offline"),
            ("Targeted", "Online"), ("Targeted", "Offline"),
        }

    def test_only_trawling_considered(self):
        for attack in GUESSING_ATTACKS:
            assert attack.considered_in_paper == (
                attack.family == "Trawling"
            )

    def test_personal_data_axis(self):
        for attack in GUESSING_ATTACKS:
            assert attack.uses_personal_data == (
                attack.family == "Targeted"
            )

    def test_server_interaction_axis(self):
        for attack in GUESSING_ATTACKS:
            assert attack.interacts_with_server == (
                attack.channel == "Online"
            )

    def test_online_constraint_is_lockout(self):
        online = [a for a in GUESSING_ATTACKS if a.channel == "Online"]
        assert all("lockout" in a.major_constraint.lower() for a in online)
        assert all(a.guess_budget == "< 10^4" for a in online)

    def test_offline_budget(self):
        offline = [a for a in GUESSING_ATTACKS if a.channel == "Offline"]
        assert all(a.guess_budget == "> 10^9" for a in offline)

    def test_online_budget_value(self):
        assert online_guess_budget() == 10_000
