"""Unit tests for the zxcvbn pattern matchers."""

import pytest

from repro.meters.zxcvbn.matching import Match, MatchCollector


@pytest.fixture(scope="module")
def collector():
    return MatchCollector(
        {
            "passwords": {"password": 1, "dragon": 7, "love": 20},
            "english": {"correct": 100, "horse": 200, "battery": 300},
        }
    )


def _patterns(matches):
    return {m.pattern for m in matches}


class TestDictionaryMatcher:
    def test_exact_word(self, collector):
        matches = collector.dictionary_match("password")
        assert any(
            m.matched_word == "password" and m.rank == 1 for m in matches
        )

    def test_substring_word(self, collector):
        matches = collector.dictionary_match("xxdragonyy")
        match = next(m for m in matches if m.matched_word == "dragon")
        assert (match.i, match.j) == (2, 7)
        assert match.token == "dragon"

    def test_case_insensitive(self, collector):
        matches = collector.dictionary_match("PaSsWoRd")
        assert any(m.matched_word == "password" for m in matches)
        # Token preserves the original casing.
        assert any(m.token == "PaSsWoRd" for m in matches)

    def test_multiple_dictionaries(self, collector):
        matches = collector.dictionary_match("correcthorse")
        words = {m.matched_word for m in matches}
        assert {"correct", "horse"} <= words

    def test_no_match(self, collector):
        assert collector.dictionary_match("zzqqkkvv") == []


class TestReverseDictionaryMatcher:
    def test_reversed_word_found(self, collector):
        matches = collector.reverse_dictionary_match("drowssap")
        match = next(m for m in matches if m.matched_word == "password")
        assert match.reversed
        assert match.token == "drowssap"
        assert (match.i, match.j) == (0, 7)

    def test_reversed_substring_offsets(self, collector):
        matches = collector.reverse_dictionary_match("xxnogardyy")
        match = next(m for m in matches if m.matched_word == "dragon")
        assert (match.i, match.j) == (2, 7)


class TestL33tMatcher:
    def test_simple_substitution(self, collector):
        matches = collector.l33t_match("p@ssword")
        match = next(m for m in matches if m.matched_word == "password")
        assert match.l33t
        assert match.substitutions == {"@": "a"}

    def test_multiple_substitutions(self, collector):
        matches = collector.l33t_match("p@ssw0rd")
        match = next(m for m in matches if m.matched_word == "password")
        assert match.substitutions == {"@": "a", "0": "o"}

    def test_no_substitution_no_match(self, collector):
        assert collector.l33t_match("password") == []

    def test_digit_one_as_letter(self, collector):
        collector2 = MatchCollector({"words": {"il": 3, "ill": 5}})
        matches = collector2.l33t_match("1ll")
        assert any(m.matched_word == "ill" for m in matches)


class TestSpatialMatcher:
    def test_qwerty_run(self, collector):
        matches = collector.spatial_match("qwerty")
        match = next(m for m in matches if m.graph == "qwerty")
        assert match.token == "qwerty"
        assert match.turns == 1

    def test_run_with_turn(self, collector):
        matches = collector.spatial_match("qwedcv")
        match = next(m for m in matches if m.graph == "qwerty")
        assert match.turns >= 2

    def test_short_runs_ignored(self, collector):
        # Length-2 adjacency is not a spatial pattern.
        matches = [
            m for m in collector.spatial_match("qwxx") if m.graph == "qwerty"
        ]
        assert matches == []

    def test_shifted_count(self, collector):
        matches = collector.spatial_match("QWErty")
        match = next(m for m in matches if m.graph == "qwerty")
        assert match.shifted_count == 3


class TestRepeatMatcher:
    def test_triple_repeat(self, collector):
        matches = collector.repeat_match("aaa")
        assert len(matches) == 1
        assert matches[0].token == "aaa"

    def test_double_not_matched(self, collector):
        assert collector.repeat_match("aab") == []

    def test_repeat_inside(self, collector):
        matches = collector.repeat_match("xy11111z")
        assert matches[0].token == "11111"
        assert (matches[0].i, matches[0].j) == (2, 6)


class TestSequenceMatcher:
    def test_ascending_letters(self, collector):
        matches = collector.sequence_match("abcdef")
        match = matches[0]
        assert match.token == "abcdef"
        assert match.ascending
        assert match.sequence_name == "lower"

    def test_descending_digits(self, collector):
        matches = collector.sequence_match("98765")
        match = matches[0]
        assert match.token == "98765"
        assert not match.ascending
        assert match.sequence_name == "digits"

    def test_short_sequence_ignored(self, collector):
        assert collector.sequence_match("ab1") == []

    def test_sequence_inside(self, collector):
        matches = collector.sequence_match("xx456yy")
        assert any(m.token == "456" for m in matches)


class TestDateMatcher:
    def test_four_digit_year(self, collector):
        matches = collector.date_match("born1984ok")
        assert any(m.year == 1984 for m in matches)

    def test_six_digit_date(self, collector):
        matches = collector.date_match("130584")
        assert any(m.year == 1984 for m in matches)

    def test_eight_digit_date(self, collector):
        matches = collector.date_match("13051984")
        assert any(m.year == 1984 for m in matches)

    def test_separated_date(self, collector):
        matches = collector.date_match("13/05/1984")
        match = next(m for m in matches if m.separator == "/")
        assert match.year == 1984

    def test_two_digit_year_normalised(self, collector):
        matches = collector.date_match("1/5/84")
        assert any(m.year == 1984 for m in matches)
        # Ambiguous two-digit parts: the matcher conservatively keeps
        # the smallest plausible year among the candidate readings.
        matches = collector.date_match("1/5/05")
        assert any(
            m.year is not None and 2000 <= m.year <= 2005 for m in matches
        )

    def test_invalid_date_rejected(self, collector):
        # 9999 is not a plausible year; 99/99 not a day/month.
        assert all(m.year != 9999 for m in collector.date_match("9999"))


class TestAllMatches:
    def test_aggregates_every_matcher(self, collector):
        matches = collector.all_matches("p@ssword1984qwerty111")
        patterns = _patterns(matches)
        assert "dictionary" in patterns
        assert "date" in patterns
        assert "spatial" in patterns
        assert "repeat" in patterns

    def test_sorted_by_position(self, collector):
        matches = collector.all_matches("passworddragon")
        positions = [(m.i, m.j) for m in matches]
        assert positions == sorted(positions)

    def test_empty_password(self, collector):
        assert collector.all_matches("") == []
