"""Unit tests for the zxcvbn keyboard adjacency graphs."""

import pytest

from repro.meters.zxcvbn.adjacency import AdjacencyGraph, default_graphs


@pytest.fixture(scope="module")
def graphs():
    return default_graphs()


@pytest.fixture(scope="module")
def qwerty(graphs):
    return graphs["qwerty"]


@pytest.fixture(scope="module")
def keypad(graphs):
    return graphs["keypad"]


class TestQwertyGraph:
    def test_contains_letters_and_digits(self, qwerty):
        for ch in "qwertyuiopasdfghjklzxcvbnm1234567890":
            assert ch in qwerty

    def test_contains_shifted_engravings(self, qwerty):
        for ch in "!@#$%^&*()QWERTY":
            assert ch in qwerty

    def test_horizontal_adjacency(self, qwerty):
        assert qwerty.adjacent("q", "w") is not None
        assert qwerty.adjacent("w", "q") is not None

    def test_diagonal_adjacency(self, qwerty):
        # On a slanted board 'q' neighbours 'a' (down-left of centre).
        assert qwerty.adjacent("q", "a") is not None

    def test_non_adjacency(self, qwerty):
        assert qwerty.adjacent("q", "p") is None
        assert qwerty.adjacent("a", "l") is None

    def test_shifted_variant_is_adjacent_too(self, qwerty):
        # Shift state does not break adjacency: q -> W.
        assert qwerty.adjacent("q", "W") is not None

    def test_is_shifted(self, qwerty):
        assert qwerty.is_shifted("Q")
        assert not qwerty.is_shifted("q")
        assert qwerty.is_shifted("!")
        assert not qwerty.is_shifted("1")

    def test_unknown_character(self, qwerty):
        assert "€" not in qwerty
        assert qwerty.neighbors("€") == []
        assert not qwerty.is_shifted("€")

    def test_average_degree_plausible(self, qwerty):
        # zxcvbn's published qwerty figure is ~4.6; layout derivation
        # should land in the same neighbourhood.
        assert 3.5 <= qwerty.average_degree <= 5.5

    def test_starting_positions(self, qwerty):
        # 13 + 13 + 11 + 10 keys.
        assert qwerty.starting_positions == 47


class TestKeypadGraph:
    def test_contains_digits(self, keypad):
        for ch in "0123456789":
            assert ch in keypad

    def test_grid_adjacency(self, keypad):
        assert keypad.adjacent("4", "5") is not None
        assert keypad.adjacent("5", "8") is not None
        assert keypad.adjacent("1", "5") is not None  # diagonal

    def test_non_adjacency(self, keypad):
        assert keypad.adjacent("1", "9") is None

    def test_no_shifted_keys(self, keypad):
        assert not keypad.is_shifted("7")

    def test_average_degree_plausible(self, keypad):
        # zxcvbn's published keypad figure is ~5.1.
        assert 4.0 <= keypad.average_degree <= 6.0

    def test_starting_positions(self, keypad):
        assert keypad.starting_positions == 15


class TestDirectionSlots:
    def test_direction_changes_detectable(self, qwerty):
        # A straight right-run keeps the same direction slot.
        d1 = qwerty.adjacent("a", "s")
        d2 = qwerty.adjacent("s", "d")
        assert d1 == d2
        # A turn changes the slot.
        d3 = qwerty.adjacent("d", "e")
        assert d3 != d2
