"""Unit tests for Monte-Carlo and enumeration guess numbers."""

import math
import random

import pytest

from repro.meters.ideal import IdealMeter
from repro.metrics.guessnumber import (
    MonteCarloEstimator,
    guess_numbers_by_enumeration,
)


class UniformModel:
    """A toy model: N equally likely passwords (guess number ~ N/2)."""

    def __init__(self, n):
        self.n = n

    def sample(self, rng):
        index = rng.randrange(self.n)
        return f"pw{index}", 1.0 / self.n


class SkewedModel:
    """Two-point distribution: one popular and many rare passwords."""

    def sample(self, rng):
        if rng.random() < 0.5:
            return "popular", 0.5
        index = rng.randrange(500)
        return f"rare{index}", 0.001


class TestMonteCarlo:
    def test_uniform_model_estimates_count(self):
        model = UniformModel(1000)
        estimator = MonteCarloEstimator(
            model, sample_size=2000, rng=random.Random(0)
        )
        # Guess number of probability 1/1000 password: every sample has
        # equal probability, none strictly greater -> estimate 1.
        assert estimator.guess_number(1.0 / 1000) == pytest.approx(1.0)
        # A less probable password ranks after all 1000.
        estimate = estimator.guess_number(1.0 / 100000)
        assert estimate == pytest.approx(1001, rel=0.1)

    def test_skewed_model(self):
        estimator = MonteCarloEstimator(
            SkewedModel(), sample_size=4000, rng=random.Random(1)
        )
        assert estimator.guess_number(0.5) == pytest.approx(1.0)
        # The rare passwords come after the popular one.
        assert 1 < estimator.guess_number(0.001) < 10
        assert estimator.guess_number(0.0000001) == pytest.approx(
            1 + 1 + 500, rel=0.2
        )

    def test_zero_probability_is_infinite(self):
        estimator = MonteCarloEstimator(
            UniformModel(10), sample_size=100, rng=random.Random(2)
        )
        assert math.isinf(estimator.guess_number(0.0))

    def test_negative_probability_rejected(self):
        estimator = MonteCarloEstimator(
            UniformModel(10), sample_size=10, rng=random.Random(3)
        )
        with pytest.raises(ValueError):
            estimator.guess_number(-0.1)

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            MonteCarloEstimator(UniformModel(10), sample_size=0)

    def test_monotone_in_probability(self):
        estimator = MonteCarloEstimator(
            SkewedModel(), sample_size=2000, rng=random.Random(4)
        )
        values = [estimator.guess_number(p)
                  for p in (0.5, 0.01, 0.001, 0.00001)]
        assert values == sorted(values)

    def test_batch(self):
        estimator = MonteCarloEstimator(
            UniformModel(10), sample_size=100, rng=random.Random(5)
        )
        batch = estimator.guess_numbers([0.1, 0.05])
        assert batch == [estimator.guess_number(0.1),
                         estimator.guess_number(0.05)]


class TestEnumerationGuessNumbers:
    def test_ranks_assigned(self):
        ideal = IdealMeter(["a"] * 5 + ["b"] * 3 + ["c"])
        results = guess_numbers_by_enumeration(
            ideal.iter_guesses(), targets=["b", "c", "zzz"], limit=100
        )
        assert results["b"] == 2
        assert results["c"] == 3
        assert results["zzz"] is None

    def test_limit_respected(self):
        ideal = IdealMeter(["a"] * 3 + ["b"] * 2 + ["c"])
        results = guess_numbers_by_enumeration(
            ideal.iter_guesses(), targets=["c"], limit=2
        )
        assert results["c"] is None

    def test_duplicates_counted_once(self):
        guesses = iter([("a", 0.5), ("a", 0.5), ("b", 0.3)])
        results = guess_numbers_by_enumeration(
            guesses, targets=["b"], limit=10
        )
        assert results["b"] == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            guess_numbers_by_enumeration(iter([]), targets=["a"], limit=0)
