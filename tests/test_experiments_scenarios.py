"""Unit tests for the Table-XI scenario matrix."""

import pytest

from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    CROSS_LANGUAGE_SCENARIOS,
    IDEAL_SCENARIOS,
    REAL_SCENARIOS,
    scenario,
)


class TestMatrixShape:
    def test_nine_ideal_scenarios(self):
        # Fig. 13(a)-(i).
        assert len(IDEAL_SCENARIOS) == 9

    def test_seven_real_scenarios(self):
        # Fig. 13(j)-(p).
        assert len(REAL_SCENARIOS) == 7

    def test_two_cross_language_scenarios(self):
        # Fig. 13(q)-(r).
        assert len(CROSS_LANGUAGE_SCENARIOS) == 2

    def test_all_scenarios_union(self):
        assert len(ALL_SCENARIOS) == 18

    def test_unique_names_and_figures(self):
        names = [s.name for s in ALL_SCENARIOS]
        figures = [s.figure for s in ALL_SCENARIOS]
        assert len(set(names)) == len(names)
        assert len(set(figures)) == len(figures)


class TestTableXIRows:
    def test_base_dictionaries(self):
        # Table XI: Rockyou for English, Tianya for Chinese.
        for s in ALL_SCENARIOS:
            assert s.base_dataset in ("rockyou", "tianya")

    def test_ideal_scenarios_have_no_extra_training(self):
        for s in IDEAL_SCENARIOS:
            assert s.train_dataset is None
            assert s.kind == "ideal"

    def test_real_scenarios_training_sources(self):
        # Table XI: Phpbb trains English targets, Weibo Chinese ones.
        for s in REAL_SCENARIOS:
            assert s.train_dataset in ("phpbb", "weibo")

    def test_cross_language_rows(self):
        dodonew = scenario("cross-dodonew")
        assert dodonew.figure == "13(q)"
        assert dodonew.base_dataset == "rockyou"
        assert dodonew.train_dataset == "phpbb"
        yahoo = scenario("cross-yahoo")
        assert yahoo.figure == "13(r)"
        assert yahoo.base_dataset == "tianya"
        assert yahoo.train_dataset == "weibo"

    def test_fig9_is_ideal_csdn(self):
        s = scenario("ideal-csdn")
        assert s.figure == "13(h)"
        assert s.test_dataset == "csdn"

    def test_language_group(self):
        assert scenario("ideal-csdn").language_group == "Chinese"
        assert scenario("ideal-phpbb").language_group == "English"


class TestLookup:
    def test_known(self):
        assert scenario("real-yahoo").kind == "real"

    def test_unknown(self):
        with pytest.raises(KeyError):
            scenario("ideal-myspace")
