"""Unit tests for character classes and L/D/S segmentation."""

import pytest

from repro.util.charclasses import (
    CharClass,
    base_structure,
    char_class,
    classify_composition,
    is_printable_ascii,
    segment_by_class,
)


class TestCharClass:
    def test_lowercase_is_letter(self):
        assert char_class("a") is CharClass.LETTER

    def test_uppercase_is_letter(self):
        assert char_class("Z") is CharClass.LETTER

    def test_digit(self):
        assert char_class("5") is CharClass.DIGIT

    def test_symbols(self):
        for ch in "!@#$%^&*()_+ ~":
            assert char_class(ch) is CharClass.SYMBOL

    def test_multichar_rejected(self):
        with pytest.raises(ValueError):
            char_class("ab")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            char_class("")


class TestSegmentation:
    def test_paper_example_p_at_ssw0rd(self):
        # Paper Sec. IV-C: p@ssw0rd has base structure L1 S1 L3 D1 L2.
        assert base_structure("p@ssw0rd") == "L1S1L3D1L2"

    def test_paper_example_password123(self):
        assert base_structure("Password123") == "L8D3"

    def test_paper_example_alternating(self):
        assert base_structure("123qwe123qwe") == "D3L3D3L3"

    def test_segments_reassemble(self):
        password = "a1!B2@c"
        assert "".join(
            s.text for s in segment_by_class(password)
        ) == password

    def test_single_class(self):
        segments = segment_by_class("abcdef")
        assert len(segments) == 1
        assert segments[0].label == "L6"

    def test_empty_password(self):
        assert segment_by_class("") == []

    def test_case_does_not_split_letters(self):
        assert base_structure("PassWord") == "L8"


class TestComposition:
    def test_lower_only(self):
        classes = classify_composition("password")
        assert "^[a-z]+$" in classes
        assert "^[A-Za-z]+$" in classes
        assert "^[0-9]+$" not in classes

    def test_digits_only(self):
        classes = classify_composition("123456")
        assert "^[0-9]+$" in classes
        assert "[0-9]" in classes

    def test_letters_then_digits(self):
        assert "^[a-zA-Z]+[0-9]+$" in classify_composition("abc123")

    def test_lower_then_one(self):
        assert "^[a-z]+1$" in classify_composition("monkey1")
        assert "^[a-z]+1$" not in classify_composition("monkey2")

    def test_symbol_only(self):
        assert "symbol only" in classify_composition("!!!")

    def test_alnum(self):
        assert "^[a-zA-Z0-9]+$" in classify_composition("Abc123")
        assert "^[a-zA-Z0-9]+$" not in classify_composition("abc!123")


class TestPrintable:
    def test_ascii_ok(self):
        assert is_printable_ascii("Abc123!@# ~")

    def test_non_ascii_rejected(self):
        assert not is_printable_ascii("pässword")
        assert not is_printable_ascii("中文密码")

    def test_control_chars_rejected(self):
        assert not is_printable_ascii("abc\x00")
        assert not is_printable_ascii("abc\n")
