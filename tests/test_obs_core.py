"""The telemetry primitives: histograms, spans, backend selection.

Nothing here touches the wall clock — spans run against an injected
fake clock, and histogram assertions target the fixed log-spaced
bucket boundaries, which are class-level constants.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.core import (
    Histogram,
    NoopTelemetry,
    Telemetry,
    log_spaced_bounds,
)


class FakeClock:
    """A manually-advanced clock for span tests."""

    def __init__(self) -> None:
        self.time = 0.0

    def __call__(self) -> float:
        return self.time

    def advance(self, seconds: float) -> None:
        self.time += seconds


class TestLogSpacedBounds:
    def test_decade_steps(self):
        bounds = log_spaced_bounds(1e-3, steps_per_decade=1, decades=3)
        assert [round(b, 9) for b in bounds] == [1e-3, 1e-2, 1e-1]

    def test_default_bounds_are_strictly_increasing(self):
        bounds = Histogram.BOUNDS
        assert len(bounds) == 36  # 9 decades x 4 buckets
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_default_bounds_span_microseconds_to_minutes(self):
        assert Histogram.BOUNDS[0] == pytest.approx(1e-6)
        assert Histogram.BOUNDS[-1] > 100.0


class TestHistogram:
    def test_moments(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.007)
        assert histogram.mean == pytest.approx(0.007 / 3)
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.004

    def test_bucket_placement_is_deterministic(self):
        histogram = Histogram()
        assert histogram.bucket_index(0.0) == 0          # underflow
        assert histogram.bucket_index(1e9) == len(histogram.BOUNDS)
        # Same value, same bucket — always: the boundaries are frozen.
        assert histogram.bucket_index(0.0042) == Histogram().bucket_index(
            0.0042
        )

    def test_values_a_decade_apart_occupy_distinct_buckets(self):
        histogram = Histogram()
        histogram.observe(0.001)
        histogram.observe(0.001)
        histogram.observe(0.01)
        occupied = histogram.nonzero_buckets()
        assert [count for _, count in occupied] == [2, 1]

    def test_overflow_bucket_reports_no_upper_bound(self):
        histogram = Histogram()
        histogram.observe(1e9)
        (bound, count), = histogram.nonzero_buckets()
        assert bound is None
        assert count == 1

    def test_snapshot_shape(self):
        histogram = Histogram()
        histogram.observe(0.5)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 0.5
        assert snap["min"] == snap["max"] == 0.5
        assert snap["buckets"] == [
            {"le": histogram.BOUNDS[histogram.bucket_index(0.5)],
             "count": 1}
        ]

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap == {
            "count": 0, "sum": 0.0, "min": None, "max": None,
            "mean": 0.0, "buckets": [],
        }


class TestSpan:
    def test_timer_observes_elapsed_seconds(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.timer("stage.seconds"):
            clock.advance(0.25)
        histogram = telemetry.histogram("stage.seconds")
        assert histogram is not None
        assert histogram.count == 1
        assert histogram.total == 0.25

    def test_failed_stage_is_still_recorded(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        with pytest.raises(RuntimeError):
            with telemetry.timer("stage.seconds"):
                clock.advance(1.5)
                raise RuntimeError("stage blew up")
        histogram = telemetry.histogram("stage.seconds")
        assert histogram is not None
        assert histogram.total == 1.5

    def test_repeated_spans_share_one_histogram(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        for elapsed in (0.1, 0.2, 0.3):
            with telemetry.timer("stage.seconds"):
                clock.advance(elapsed)
        histogram = telemetry.histogram("stage.seconds")
        assert histogram is not None
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.6)


class TestTelemetry:
    def test_counters(self):
        telemetry = Telemetry()
        telemetry.incr("a")
        telemetry.incr("a", 4)
        telemetry.incr("b", 0)
        assert telemetry.counter("a") == 5
        assert telemetry.counter("b") == 0
        assert telemetry.counter("never") == 0
        assert telemetry.counters() == {"a": 5, "b": 0}

    def test_deferred_events_fold_at_first_read(self):
        telemetry = Telemetry()
        applied = []

        def handler(backend, event):
            applied.append(event)
            backend.incr("parses", event)

        telemetry.defer(handler, 2)
        telemetry.defer(handler, 3)
        assert applied == []  # buffered: the hot path paid one append
        assert telemetry.counter("parses") == 5  # reading drains
        assert applied == [2, 3]

    def test_defer_limit_drains_inline(self):
        telemetry = Telemetry()
        telemetry.DEFER_LIMIT = 3
        seen = []
        handler = lambda backend, event: seen.append(event)
        telemetry.defer(handler, 0)
        telemetry.defer(handler, 1)
        assert seen == []
        telemetry.defer(handler, 2)  # buffer full: drained in place
        assert seen == [0, 1, 2]

    def test_reset_drops_buffered_events(self):
        telemetry = Telemetry()
        telemetry.defer(lambda backend, event: backend.incr("x"), None)
        telemetry.reset()
        assert telemetry.counter("x") == 0

    def test_incr_many_matches_repeated_incr(self):
        bulk, looped = Telemetry(), Telemetry()
        items = [("a", 2), ("b", 1), ("a", 3)]
        bulk.incr_many(items)
        for name, amount in items:
            looped.incr(name, amount)
        assert bulk.counters() == looped.counters() == {"a": 5, "b": 1}

    def test_snapshot_is_json_ready(self):
        telemetry = Telemetry(clock=FakeClock())
        telemetry.incr("hits", 3)
        telemetry.observe("batch.size", 10.0)
        snap = telemetry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {"hits": 3}
        assert snap["histograms"]["batch.size"]["count"] == 1

    def test_reset_keeps_the_backend(self):
        telemetry = Telemetry()
        telemetry.incr("hits")
        telemetry.observe("batch.size", 1.0)
        telemetry.reset()
        assert telemetry.counters() == {}
        assert telemetry.histogram("batch.size") is None
        assert telemetry.enabled


class TestNoopTelemetry:
    def test_records_nothing(self):
        noop = NoopTelemetry()
        noop.incr("hits", 10)
        noop.incr_many([("hits", 3), ("misses", 1)])
        noop.defer(lambda backend, event: backend.incr("hits"), None)
        noop.observe("batch.size", 5.0)
        with noop.timer("stage.seconds"):
            pass
        snap = noop.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_enabled_is_false(self):
        assert NoopTelemetry().enabled is False

    def test_timer_returns_the_shared_span(self):
        noop = NoopTelemetry()
        # The hot path writes ``with tel.timer(...)`` unconditionally;
        # zero overhead requires the no-op span to be allocation-free.
        assert noop.timer("a") is noop.timer("b")


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _restore_backend(self, monkeypatch):
        # These tests flip the process-wide backend; pin the original
        # so a failure cannot leak a collecting backend into the suite.
        monkeypatch.setattr(obs, "_ACTIVE", obs.get())

    def test_enable_and_disable(self):
        installed = obs.enable()
        assert obs.get() is installed
        assert installed.enabled
        obs.disable()
        assert not obs.get().enabled

    def test_enable_accepts_a_custom_backend(self):
        custom = Telemetry(clock=FakeClock())
        assert obs.enable(custom) is custom
        assert obs.get() is custom

    def test_session_installs_and_restores(self):
        before = obs.get()
        with obs.session() as telemetry:
            assert obs.get() is telemetry
            assert telemetry is not before
        assert obs.get() is before

    def test_session_restores_on_exception(self):
        before = obs.get()
        with pytest.raises(RuntimeError):
            with obs.session():
                raise RuntimeError("workload failed")
        assert obs.get() is before

    def test_sessions_nest_without_leaking(self):
        with obs.session() as outer:
            outer.incr("outer")
            with obs.session() as inner:
                inner.incr("inner")
                assert obs.get() is inner
            assert obs.get() is outer
        assert outer.counters() == {"outer": 1}
        assert "outer" not in inner.counters()

    def test_session_accepts_a_clock(self):
        clock = FakeClock()
        with obs.session(clock=clock) as telemetry:
            with telemetry.timer("stage.seconds"):
                clock.advance(2.0)
        histogram = telemetry.histogram("stage.seconds")
        assert histogram is not None
        assert histogram.total == 2.0


class TestEnvironmentSelection:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable_collection(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        assert obs._backend_from_environment().enabled

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "nope"])
    def test_other_values_stay_noop(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        assert not obs._backend_from_environment().enabled

    def test_unset_stays_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not obs._backend_from_environment().enabled
