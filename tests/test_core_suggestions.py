"""Unit tests for the stronger-password suggestion engine."""

import random

import pytest

from repro.core import FuzzyPSM
from repro.core.policy import PasswordPolicy
from repro.core.suggestions import (
    Suggestion,
    improvement_report,
    suggest_stronger,
)
from repro.meters.nist import NISTMeter


@pytest.fixture(scope="module")
def nist():
    return NISTMeter()


@pytest.fixture(scope="module")
def fuzzy():
    passwords = [
        "password", "password", "password1", "password123",
        "123456", "123456", "iloveyou", "dragon", "qwerty12",
    ]
    return FuzzyPSM.train(base_dictionary=passwords, training=passwords)


class TestBasicBehaviour:
    def test_suggestions_meet_target(self, nist):
        suggestions = suggest_stronger(nist, "abcdef", target_bits=18.0)
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.entropy_bits >= 18.0

    def test_sorted_by_edit_count_then_strength(self, nist):
        suggestions = suggest_stronger(nist, "abcdef", target_bits=18.0,
                                       max_suggestions=10)
        keys = [(s.edit_count, s.probability) for s in suggestions]
        assert keys == sorted(keys)

    def test_deterministic(self, nist):
        first = suggest_stronger(nist, "abcdef", target_bits=18.0)
        second = suggest_stronger(nist, "abcdef", target_bits=18.0)
        assert [s.password for s in first] == [
            s.password for s in second
        ]

    def test_respects_max_suggestions(self, nist):
        suggestions = suggest_stronger(
            nist, "abcdef", target_bits=16.0, max_suggestions=3
        )
        assert len(suggestions) <= 3

    def test_original_never_suggested(self, nist):
        suggestions = suggest_stronger(nist, "abcdef", target_bits=10.0)
        assert all(s.password != "abcdef" for s in suggestions)

    def test_edits_described(self, nist):
        suggestions = suggest_stronger(nist, "abcdef", target_bits=18.0)
        for suggestion in suggestions:
            assert suggestion.edits
            assert all(isinstance(edit, str) for edit in suggestion.edits)


class TestAgainstTrainedMeter:
    def test_weak_training_password_improved(self, fuzzy):
        # "password" is the head of the training set; one edit should
        # push it out of the modelled guess space.
        suggestions = suggest_stronger(fuzzy, "password",
                                       target_bits=25.0)
        assert suggestions
        weak = fuzzy.probability("password")
        for suggestion in suggestions:
            assert suggestion.probability < weak

    def test_suggestion_probability_matches_meter(self, fuzzy):
        for suggestion in suggest_stronger(fuzzy, "password123",
                                           target_bits=25.0):
            assert fuzzy.probability(
                suggestion.password
            ) == suggestion.probability


class TestConstraints:
    def test_policy_filtering(self, nist):
        policy = PasswordPolicy(min_length=6, max_length=7)
        suggestions = suggest_stronger(
            nist, "abcdef", target_bits=16.0, policy=policy,
            max_suggestions=10,
        )
        for suggestion in suggestions:
            assert policy.is_allowed(suggestion.password)

    def test_unreachable_target_returns_empty(self, nist):
        suggestions = suggest_stronger(
            nist, "ab", target_bits=500.0, max_edits=1
        )
        assert suggestions == []

    def test_multi_edit_composition(self, nist):
        # A short password needs two insertions to reach the target.
        suggestions = suggest_stronger(
            nist, "abcd", target_bits=16.5, max_edits=2,
            max_suggestions=10,
        )
        assert suggestions
        assert any(s.edit_count == 2 for s in suggestions)

    def test_validation(self, nist):
        with pytest.raises(ValueError):
            suggest_stronger(nist, "", target_bits=10.0)
        with pytest.raises(ValueError):
            suggest_stronger(nist, "abc", target_bits=0.0)
        with pytest.raises(ValueError):
            suggest_stronger(nist, "abc", target_bits=10.0, max_edits=0)


class TestReport:
    def test_report_lines(self, nist):
        suggestions = suggest_stronger(nist, "abcdef", target_bits=18.0,
                                       max_suggestions=2)
        lines = improvement_report(nist, "abcdef", suggestions)
        assert lines[0].startswith("original")
        assert len(lines) == 1 + len(suggestions)

    def test_report_no_suggestions(self, nist):
        lines = improvement_report(nist, "abcdef", [])
        assert any("no qualifying" in line for line in lines)
