"""Property-based differential tests: every fast path vs its reference.

The performance layer (compiled trie, parse cache, batch scoring) is
contractually an execution-strategy change only.  These tests pit each
fast path against its reference implementation on generated inputs —
unicode text, leet-dense dictionary mashups, lengths 0-64 — and demand
bitwise-identical results.

``derandomize=True`` pins Hypothesis to its deterministic seed, so a
failure here reproduces identically on every machine and CI run.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.meter import FuzzyPSM, FuzzyPSMConfig  # noqa: E402
from repro.core.parser import FuzzyParser  # noqa: E402
from repro.core.training import build_base_trie  # noqa: E402
from repro.util.leet import LEET_BY_LETTER  # noqa: E402

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS  # noqa: E402

#: A dictionary rich in leet-able letters and shared prefixes, so the
#: longest-prefix-match tie-breaking actually gets exercised.
WORDS = BASE_DICTIONARY + [
    "love", "lovely", "passwords", "admin", "soccer", "starwars",
    "astala", "astalavista",
]

DETERMINISTIC = settings(max_examples=150, deadline=None,
                         derandomize=True)


@st.composite
def leet_dense(draw) -> str:
    """A dictionary word pushed through the paper's transformations."""
    word = draw(st.sampled_from(WORDS))
    chars = []
    for char in word:
        substitute = LEET_BY_LETTER.get(char)
        if substitute is not None and draw(st.booleans()):
            chars.append(substitute)
        else:
            chars.append(char)
    if draw(st.booleans()):
        chars[0] = chars[0].upper()
    suffix = draw(st.sampled_from(["", "1", "123", "!", "2016", "!!"]))
    return "".join(chars) + suffix


@st.composite
def mashup(draw) -> str:
    """1-3 chunks, each a transformed word or arbitrary short text."""
    chunks = draw(st.lists(
        st.one_of(leet_dense(), st.text(max_size=8)),
        min_size=1, max_size=3,
    ))
    return "".join(chunks)[:64]


#: The full input space: arbitrary unicode up to 64 chars (including
#: the empty string), leet-dense words, and concatenated mashups.
PASSWORDS = st.one_of(st.text(max_size=64), leet_dense(), mashup())


def _parser_pair(**flags) -> "tuple[FuzzyParser, FuzzyParser]":
    trie = build_base_trie(WORDS)
    return (
        FuzzyParser(trie, use_compiled=True, **flags),
        FuzzyParser(trie, use_compiled=False, **flags),
    )


_COMPILED, _POINTER = _parser_pair()
_COMPILED_FULL, _POINTER_FULL = _parser_pair(
    allow_reverse=True, allow_allcaps=True
)
_CACHED_PARSER = FuzzyParser(build_base_trie(WORDS), parse_cache_size=64)

_METER = FuzzyPSM.train(WORDS, TRAINING_PASSWORDS)
_POINTER_METER = FuzzyPSM.train(
    WORDS, TRAINING_PASSWORDS,
    config=FuzzyPSMConfig(use_compiled_trie=False),
)


class TestCompiledVsPointerTrie:
    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_parses_are_identical(self, password):
        assert _COMPILED.parse(password) == _POINTER.parse(password)

    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_parses_agree_with_all_rules_enabled(self, password):
        assert (
            _COMPILED_FULL.parse(password)
            == _POINTER_FULL.parse(password)
        )

    @given(batch=st.lists(PASSWORDS, max_size=20))
    @DETERMINISTIC
    def test_meter_probabilities_are_identical(self, batch):
        assert (
            _METER.probability_many(batch)
            == _POINTER_METER.probability_many(batch)
        )


class TestParseCache:
    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_cached_parse_equals_direct_parse(self, password):
        # Hits and misses alike: a second lookup must return the same
        # parse whether it was served from the LRU or recomputed.
        assert _CACHED_PARSER.parse_cached(password) == \
            _CACHED_PARSER.parse(password)
        assert _CACHED_PARSER.parse_cached(password) == \
            _CACHED_PARSER.parse(password)


class TestBatchScoring:
    @given(batch=st.lists(PASSWORDS, max_size=20))
    @DETERMINISTIC
    def test_probability_many_equals_per_call_loop(self, batch):
        expected = [_METER.probability(pw) for pw in batch]
        assert _METER.probability_many(batch) == expected

    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_entropy_many_equals_per_call(self, password):
        assert _METER.entropy_many([password]) == \
            [_METER.entropy(password)]


class TestParseInvariants:
    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_segments_tile_the_password(self, password):
        # Every transformation is length-preserving, so the segment
        # bases must partition the input exactly.
        parsed = _COMPILED_FULL.parse(password)
        assert sum(len(seg.base) for seg in parsed.segments) == \
            len(password)
        assert parsed.password == password

    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_parsing_is_deterministic(self, password):
        assert _COMPILED.parse(password) == _COMPILED.parse(password)
