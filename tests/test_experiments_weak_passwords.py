"""Tests for the Table-II weak-password guess-number comparison."""

import math

import pytest

from repro.core import FuzzyPSM
from repro.datasets.corpus import PasswordCorpus
from repro.experiments.weak_passwords import (
    TYPICAL_WEAK_PASSWORDS,
    WeakPasswordRow,
    weak_password_table,
)
from repro.meters.nist import NISTMeter
from repro.meters.pcfg import PCFGMeter


@pytest.fixture(scope="module")
def training_corpus():
    # A corpus where the paper's weak passwords genuinely rank high.
    counts = {
        "password": 120,
        "123456": 100,
        "password123": 40,
        "123qwe": 30,
        "Password123": 8,
        "p@ssw0rd": 6,
        "123qwe123qwe": 5,
    }
    # Heavy tail of filler passwords.
    for index in range(200):
        counts[f"filler{index:03d}"] = 2
    return PasswordCorpus(counts, name="toy-csdn")


@pytest.fixture(scope="module")
def meters(training_corpus):
    items = list(training_corpus.items())
    return [
        FuzzyPSM.train(
            base_dictionary=[pw for pw, _ in items], training=items
        ),
        PCFGMeter.train(items),
        NISTMeter(),
    ]


@pytest.fixture(scope="module")
def rows(meters, training_corpus):
    return weak_password_table(
        meters, training_corpus, sample_size=4_000, seed=1
    )


class TestTableStructure:
    def test_paper_password_list(self):
        assert TYPICAL_WEAK_PASSWORDS == (
            "123qwe", "123qwe123qwe", "password123", "Password123",
            "password", "p@ssw0rd",
        )

    def test_one_row_per_password(self, rows):
        assert [row.password for row in rows] == list(
            TYPICAL_WEAK_PASSWORDS
        )

    def test_training_ranks_present(self, rows, training_corpus):
        by_password = {row.password: row for row in rows}
        assert by_password["password"].training_rank == 1
        # Every measured password appears in this training corpus, so
        # each row carries its rank.
        assert all(row.training_rank is not None for row in rows)

    def test_every_meter_reported(self, rows, meters):
        for row in rows:
            assert set(row.guess_numbers) == (
                {m.name for m in meters} | {"Ideal"}
            )


class TestGuessNumbers:
    def test_ideal_guess_numbers_are_training_ranks(self, rows):
        by_password = {row.password: row for row in rows}
        assert by_password["password"].guess_numbers["Ideal"] == 1.0

    def test_popular_passwords_get_small_numbers(self, rows):
        by_password = {row.password: row for row in rows}
        assert by_password["password"].guess_numbers["fuzzyPSM"] < 100

    def test_rare_passwords_get_larger_numbers(self, rows):
        by_password = {row.password: row for row in rows}
        weak = by_password["password"].guess_numbers["fuzzyPSM"]
        rare = by_password["p@ssw0rd"].guess_numbers["fuzzyPSM"]
        assert rare > weak

    def test_rule_based_meter_uses_entropy(self, rows, meters):
        nist = next(m for m in meters if m.name == "NIST")
        for row in rows:
            assert row.guess_numbers["NIST"] == pytest.approx(
                2.0 ** nist.entropy(row.password)
            )

    def test_fuzzy_psm_closest_on_most_rows(self, rows):
        """Table II's takeaway: fuzzyPSM most accurate overall."""
        closest = [row.closest_meter() for row in rows]
        wins = closest.count("fuzzyPSM")
        assert wins >= len(rows) // 2


class TestClosestMeter:
    def test_log_scale_distance(self):
        row = WeakPasswordRow(
            password="x", training_rank=1,
            guess_numbers={"Ideal": 100.0, "A": 90.0, "B": 10_000.0},
        )
        assert row.closest_meter() == "A"

    def test_infinite_ideal_gives_none(self):
        row = WeakPasswordRow(
            password="x", training_rank=None,
            guess_numbers={"Ideal": math.inf, "A": 5.0},
        )
        assert row.closest_meter() is None

    def test_infinite_candidates_skipped(self):
        row = WeakPasswordRow(
            password="x", training_rank=1,
            guess_numbers={"Ideal": 10.0, "A": math.inf, "B": 20.0},
        )
        assert row.closest_meter() == "B"
