"""Unit tests for un-usable guess counting (Table III)."""

import pytest

from repro.metrics.unusable import count_unusable_guesses


def stream(*guesses):
    return iter((g, 1.0 / (i + 1)) for i, g in enumerate(guesses))


class TestCounting:
    def test_all_usable(self):
        result = count_unusable_guesses(
            stream("a", "b", "c"), ["a", "b", "c"], checkpoints=[3]
        )
        assert result == {3: 0}

    def test_all_unusable(self):
        result = count_unusable_guesses(
            stream("x", "y", "z"), ["a"], checkpoints=[2, 3]
        )
        assert result == {2: 2, 3: 3}

    def test_mixed_at_checkpoints(self):
        result = count_unusable_guesses(
            stream("a", "x", "b", "y"), ["a", "b"], checkpoints=[1, 2, 4]
        )
        assert result == {1: 0, 2: 1, 4: 2}

    def test_duplicates_skipped(self):
        guesses = iter([("a", 0.9), ("a", 0.9), ("x", 0.5)])
        result = count_unusable_guesses(guesses, ["a"], checkpoints=[2])
        assert result == {2: 1}

    def test_stream_exhausted_before_checkpoint(self):
        result = count_unusable_guesses(
            stream("x", "a"), ["a"], checkpoints=[10]
        )
        assert result == {10: 1}

    def test_checkpoints_unsorted_input(self):
        result = count_unusable_guesses(
            stream("x", "y", "z"), [], checkpoints=[3, 1]
        )
        assert result == {1: 1, 3: 3}

    def test_empty_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            count_unusable_guesses(stream("a"), ["a"], checkpoints=[])

    def test_nonpositive_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            count_unusable_guesses(stream("a"), ["a"], checkpoints=[0])
