"""Unit tests for zxcvbn entropy scoring and the minimum-entropy DP."""

import math

import pytest

from repro.meters.zxcvbn.matching import Match, MatchCollector
from repro.meters.zxcvbn.scoring import (
    bruteforce_charspace,
    date_entropy,
    dictionary_entropy,
    l33t_entropy,
    match_entropy,
    minimum_entropy_match_sequence,
    repeat_entropy,
    sequence_entropy,
    spatial_entropy,
    uppercase_entropy,
)


class TestBruteforceCharspace:
    def test_lower_only(self):
        assert bruteforce_charspace("abc") == 26

    def test_lower_and_digits(self):
        assert bruteforce_charspace("abc123") == 36

    def test_all_classes(self):
        assert bruteforce_charspace("aB1!") == 95

    def test_empty_is_floor_one(self):
        assert bruteforce_charspace("") == 1


class TestUppercaseEntropy:
    def test_all_lower_is_free(self):
        assert uppercase_entropy("password") == 0.0

    def test_first_capital_one_bit(self):
        assert uppercase_entropy("Password") == 1.0

    def test_all_caps_one_bit(self):
        assert uppercase_entropy("PASSWORD") == 1.0

    def test_last_capital_one_bit(self):
        assert uppercase_entropy("passworD") == 1.0

    def test_mixed_capitals_cost_more(self):
        assert uppercase_entropy("pAsSwOrD") > 1.0

    def test_digits_only_free(self):
        assert uppercase_entropy("123456") == 0.0


class TestDictionaryEntropy:
    def _match(self, token, rank, **kwargs):
        return Match(pattern="dictionary", i=0, j=len(token) - 1,
                     token=token, matched_word=token.lower(), rank=rank,
                     **kwargs)

    def test_rank_term(self):
        assert dictionary_entropy(self._match("password", 1)) == 0.0
        assert dictionary_entropy(
            self._match("dragon", 64)
        ) == pytest.approx(6.0)

    def test_capitalization_term(self):
        plain = dictionary_entropy(self._match("password", 8))
        capped = dictionary_entropy(self._match("Password", 8))
        assert capped == pytest.approx(plain + 1.0)

    def test_reversed_term(self):
        plain = dictionary_entropy(self._match("password", 8))
        backwards = dictionary_entropy(
            self._match("drowssap", 8, reversed=True)
        )
        assert backwards == pytest.approx(plain + 1.0)

    def test_l33t_term_at_least_one_bit(self):
        leet = self._match("p@ssword", 8, l33t=True,
                           substitutions={"@": "a"})
        plain = dictionary_entropy(self._match("password", 8))
        assert dictionary_entropy(leet) >= plain + 1.0


class TestPatternEntropies:
    def test_repeat_entropy(self):
        match = Match(pattern="repeat", i=0, j=4, token="aaaaa")
        assert repeat_entropy(match) == pytest.approx(math.log2(26 * 5))

    def test_sequence_entropy_trivial_start(self):
        match = Match(pattern="sequence", i=0, j=5, token="abcdef",
                      sequence_name="lower", ascending=True)
        assert sequence_entropy(match) == pytest.approx(
            1.0 + math.log2(6)
        )

    def test_sequence_entropy_descending_penalty(self):
        up = Match(pattern="sequence", i=0, j=4, token="56789",
                   sequence_name="digits", ascending=True)
        down = Match(pattern="sequence", i=0, j=4, token="98765",
                     sequence_name="digits", ascending=False)
        assert sequence_entropy(down) == pytest.approx(
            sequence_entropy(up) + 1.0
        )

    def test_spatial_entropy_grows_with_length(self):
        short = Match(pattern="spatial", i=0, j=3, token="qwer",
                      graph="qwerty", turns=1)
        long = Match(pattern="spatial", i=0, j=7, token="qwertyui",
                     graph="qwerty", turns=1)
        assert spatial_entropy(long) > spatial_entropy(short)

    def test_spatial_entropy_grows_with_turns(self):
        straight = Match(pattern="spatial", i=0, j=5, token="qwerty",
                         graph="qwerty", turns=1)
        twisty = Match(pattern="spatial", i=0, j=5, token="qwedcv",
                       graph="qwerty", turns=3)
        assert spatial_entropy(twisty) > spatial_entropy(straight)

    def test_date_entropy_recent_year(self):
        match = Match(pattern="date", i=0, j=7, token="13051984", year=1984)
        assert date_entropy(match) == pytest.approx(
            math.log2(31 * 12 * 130)
        )

    def test_date_entropy_separator_penalty(self):
        bare = Match(pattern="date", i=0, j=5, token="130584", year=1984)
        sep = Match(pattern="date", i=0, j=7, token="13/05/84", year=1984,
                    separator="/")
        assert date_entropy(sep) == pytest.approx(date_entropy(bare) + 2.0)

    def test_match_entropy_caches(self):
        match = Match(pattern="repeat", i=0, j=2, token="aaa")
        value = match_entropy(match)
        assert match.entropy == value
        assert match_entropy(match) == value


class TestMinimumEntropySearch:
    @pytest.fixture(scope="class")
    def collector(self):
        return MatchCollector({"passwords": {"password": 1, "dragon": 7}})

    def test_empty_password(self, collector):
        result = minimum_entropy_match_sequence("", [])
        assert result.entropy == 0.0
        assert result.sequence == []

    def test_no_matches_pure_bruteforce(self, collector):
        result = minimum_entropy_match_sequence("zqvkx", [])
        assert result.entropy == pytest.approx(5 * math.log2(26))
        assert len(result.sequence) == 1
        assert result.sequence[0].pattern == "bruteforce"

    def test_dictionary_beats_bruteforce(self, collector):
        password = "password"
        result = minimum_entropy_match_sequence(
            password, collector.all_matches(password)
        )
        assert result.entropy < 8 * math.log2(26)
        assert any(m.pattern == "dictionary" for m in result.sequence)

    def test_cover_is_contiguous(self, collector):
        password = "xxpasswordyy"
        result = minimum_entropy_match_sequence(
            password, collector.all_matches(password)
        )
        cursor = 0
        for match in result.sequence:
            assert match.i == cursor
            cursor = match.j + 1
        assert cursor == len(password)

    def test_gaps_filled_with_bruteforce(self, collector):
        password = "xxpasswordyy"
        result = minimum_entropy_match_sequence(
            password, collector.all_matches(password)
        )
        patterns = [m.pattern for m in result.sequence]
        assert patterns == ["bruteforce", "dictionary", "bruteforce"]

    def test_entropy_equals_cover_sum(self, collector):
        password = "xxpasswordyy"
        result = minimum_entropy_match_sequence(
            password, collector.all_matches(password)
        )
        assert result.entropy == pytest.approx(
            sum(m.entropy for m in result.sequence)
        )

    def test_two_words(self, collector):
        password = "passworddragon"
        result = minimum_entropy_match_sequence(
            password, collector.all_matches(password)
        )
        words = [
            m.matched_word
            for m in result.sequence
            if m.pattern == "dictionary"
        ]
        assert words == ["password", "dragon"]
