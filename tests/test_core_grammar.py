"""Unit tests for the fuzzy PCFG grammar tables and derivations."""

import random

import pytest

from repro.core.grammar import (
    Derivation,
    DerivedSegment,
    FuzzyGrammar,
    leet_rule_for_char,
    structure_label,
)


def derivation(*segments):
    return Derivation(tuple(segments))


class TestLeetRuleLookup:
    def test_letters_and_substitutes_share_rule(self):
        assert leet_rule_for_char("a") == "L1"
        assert leet_rule_for_char("@") == "L1"
        assert leet_rule_for_char("s") == "L2"
        assert leet_rule_for_char("$") == "L2"
        assert leet_rule_for_char("o") == "L3"
        assert leet_rule_for_char("0") == "L3"
        assert leet_rule_for_char("1") == "L4"
        assert leet_rule_for_char("3") == "L5"
        assert leet_rule_for_char("7") == "L6"

    def test_unpaired_characters(self):
        for ch in "xyz29!#BZ":
            assert leet_rule_for_char(ch) is None


class TestDerivedSegment:
    def test_surface_plain(self):
        assert DerivedSegment("password").surface() == "password"

    def test_surface_capitalized(self):
        assert DerivedSegment("password", True).surface() == "Password"

    def test_surface_with_toggles(self):
        segment = DerivedSegment("password", False, (1, 5))
        assert segment.surface() == "p@ssw0rd"

    def test_surface_paper_figure_11(self):
        # Fig. 11: B8 -> p@ssword with leet o->0 gives p@ssw0rd.
        segment = DerivedSegment("p@ssword", False, (5,))
        assert segment.surface() == "p@ssw0rd"

    def test_toggle_on_unpaired_offset_rejected(self):
        with pytest.raises(ValueError):
            DerivedSegment("password", False, (0,)).surface()  # 'p'

    def test_structure(self):
        d = derivation(DerivedSegment("p@ssword"), DerivedSegment("1"))
        assert d.structure == (8, 1)
        assert structure_label(d.structure) == "B8 B1"


class TestObserveAndProbability:
    def test_single_observation_probability_one_ish(self):
        grammar = FuzzyGrammar()
        d = derivation(DerivedSegment("password"))
        grammar.observe(d)
        # Structure, terminal and cap probabilities are all 1; leet
        # factors are all P(No)=1.
        assert grammar.derivation_probability(d) == pytest.approx(1.0)

    def test_unseen_structure_is_zero(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("password")))
        two_seg = derivation(DerivedSegment("password"),
                             DerivedSegment("123"))
        assert grammar.derivation_probability(two_seg) == 0.0

    def test_unseen_terminal_is_zero(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("password")))
        assert grammar.derivation_probability(
            derivation(DerivedSegment("passw0rd"))
        ) == 0.0

    def test_structure_probabilities(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("password")), count=3)
        grammar.observe(
            derivation(DerivedSegment("123456"), DerivedSegment("abc"))
        )
        assert grammar.structure_probability((8,)) == pytest.approx(0.75)
        assert grammar.structure_probability((6, 3)) == pytest.approx(0.25)

    def test_capitalization_counted_per_segment(self):
        grammar = FuzzyGrammar()
        grammar.observe(
            derivation(DerivedSegment("password", True),
                       DerivedSegment("123"))
        )
        # One Yes (password) and one No (123).
        assert grammar.capitalization_probability(True) == pytest.approx(0.5)

    def test_leet_counted_per_character(self):
        grammar = FuzzyGrammar()
        # "password" has a(L1), s(L2) x2, o(L3); toggle only the o.
        grammar.observe(
            derivation(DerivedSegment("password", False, (5,)))
        )
        assert grammar.leet_probability("L3", True) == 1.0
        assert grammar.leet_probability("L2", False) == 1.0
        assert grammar.leet_probability("L1", False) == 1.0

    def test_weighted_observation(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("aaa")), count=9)
        grammar.observe(derivation(DerivedSegment("bbb")), count=1)
        assert grammar.terminal_probability("aaa") == pytest.approx(0.9)

    def test_update_shifts_probabilities(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("aaa")))
        before = grammar.terminal_probability("aaa")
        grammar.observe(derivation(DerivedSegment("bbb")))
        assert grammar.terminal_probability("aaa") < before


class TestRuleTable:
    def test_rows_cover_all_tables(self):
        grammar = FuzzyGrammar()
        grammar.observe(
            derivation(DerivedSegment("password", True, (5,)))
        )
        rows = grammar.rule_table()
        lhs = {row[0] for row in rows}
        assert "S" in lhs
        assert "B8" in lhs
        assert "Capitalize" in lhs
        assert "L3" in lhs

    def test_lhs_probabilities_sum_to_one(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("aaa")), count=2)
        grammar.observe(derivation(DerivedSegment("bbbb")))
        rows = grammar.rule_table()
        by_lhs = {}
        for lhs, _, probability in rows:
            by_lhs.setdefault(lhs, 0.0)
            by_lhs[lhs] += probability
        for lhs, total in by_lhs.items():
            assert total == pytest.approx(1.0), lhs


class TestSampling:
    def test_sample_probability_matches_measure(self):
        grammar = FuzzyGrammar()
        grammar.observe(derivation(DerivedSegment("password")), count=5)
        grammar.observe(derivation(DerivedSegment("dragon1")), count=5)
        rng = random.Random(3)
        for _ in range(50):
            _, probability = grammar.sample(rng)
            assert probability > 0

    def test_sample_untrained_raises(self):
        with pytest.raises(ValueError):
            FuzzyGrammar().sample(random.Random(0))


class TestSerialisation:
    def test_roundtrip(self):
        grammar = FuzzyGrammar()
        grammar.observe(
            derivation(DerivedSegment("password", True, (5,)),
                       DerivedSegment("123")),
            count=4,
        )
        clone = FuzzyGrammar.from_dict(grammar.to_dict())
        d = derivation(DerivedSegment("password", True, (5,)),
                       DerivedSegment("123"))
        assert clone.derivation_probability(d) == pytest.approx(
            grammar.derivation_probability(d)
        )
        assert clone.total_passwords == grammar.total_passwords
