"""Unit tests for corpus file loading/saving (plain and counted)."""

import pytest

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.loaders import (
    iter_password_entries,
    load_corpus,
    save_corpus,
    stream_corpus_chunks,
)


@pytest.fixture()
def corpus():
    return PasswordCorpus(
        {"123456": 3, "password": 2, "pass word": 1}, name="toy"
    )


class TestPlainFormat:
    def test_round_trip(self, corpus, tmp_path):
        path = tmp_path / "plain.txt"
        save_corpus(corpus, str(path), fmt="plain")
        loaded = load_corpus(str(path), fmt="plain")
        assert loaded.counts() == corpus.counts()

    def test_duplicates_counted(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("abcdef\nabcdef\nxyzzyx\n")
        loaded = load_corpus(str(path), fmt="plain")
        assert loaded.count("abcdef") == 2
        assert loaded.total == 3

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.txt"
        path.write_text("abcdef\n\n\nxyzzyx\n")
        assert load_corpus(str(path), fmt="plain").total == 2

    def test_overlong_lines_dropped(self, tmp_path):
        path = tmp_path / "long.txt"
        path.write_text("short\n" + "x" * 100 + "\n")
        loaded = load_corpus(str(path), fmt="plain", max_length=64)
        assert loaded.total == 1


class TestCountedFormat:
    def test_round_trip(self, corpus, tmp_path):
        path = tmp_path / "counted.txt"
        save_corpus(corpus, str(path), fmt="counted")
        loaded = load_corpus(str(path), fmt="counted")
        assert loaded.counts() == corpus.counts()

    def test_password_with_spaces(self, corpus, tmp_path):
        path = tmp_path / "counted.txt"
        save_corpus(corpus, str(path), fmt="counted")
        loaded = load_corpus(str(path), fmt="counted")
        assert loaded.count("pass word") == 1

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 abcdef\nnot-a-count xyz\n2 qwerty\n")
        loaded = load_corpus(str(path), fmt="counted")
        assert loaded.counts() == {"abcdef": 3, "qwerty": 2}


class TestAutoSniff:
    def test_sniffs_counted(self, corpus, tmp_path):
        path = tmp_path / "counted.txt"
        save_corpus(corpus, str(path), fmt="counted")
        loaded = load_corpus(str(path))  # fmt="auto"
        assert loaded.counts() == corpus.counts()

    def test_sniffs_plain(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("iloveyou\nsunshine\nprincess\n")
        loaded = load_corpus(str(path))
        assert loaded.total == 3

    def test_plain_digit_passwords_not_misdetected(self, tmp_path):
        # All-digit passwords have no second token, so the sniffer
        # must not read them as counted lines.
        path = tmp_path / "digits.txt"
        path.write_text("123456\n111111\n000000\n")
        loaded = load_corpus(str(path))
        assert loaded.counts() == {"123456": 1, "111111": 1, "000000": 1}


class TestValidation:
    def test_unknown_load_format(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("abc\n")
        with pytest.raises(ValueError):
            load_corpus(str(path), fmt="exotic")

    def test_unknown_save_format(self, corpus, tmp_path):
        with pytest.raises(ValueError):
            save_corpus(corpus, str(tmp_path / "x.txt"), fmt="exotic")

    def test_default_name_is_file_stem(self, corpus, tmp_path):
        path = tmp_path / "rockyou.txt"
        save_corpus(corpus, str(path))
        assert load_corpus(str(path)).name == "rockyou"

    def test_explicit_name(self, corpus, tmp_path):
        path = tmp_path / "file.txt"
        save_corpus(corpus, str(path))
        assert load_corpus(str(path), name="custom").name == "custom"


class TestStreamingEntries:
    """iter_password_entries / stream_corpus_chunks: the out-of-core path."""

    def test_entries_match_in_memory_loader(self, corpus, tmp_path):
        path = str(tmp_path / "counted.txt")
        save_corpus(corpus, path, fmt="counted")
        streamed = {}
        for password, count in iter_password_entries(path):
            streamed[password] = streamed.get(password, 0) + count
        assert streamed == dict(load_corpus(path).items())

    def test_plain_file_yields_unit_counts(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("abc\nabc\nxyz\n")
        assert list(iter_password_entries(str(path))) == [
            ("abc", 1), ("abc", 1), ("xyz", 1),
        ]

    def test_chunks_are_bounded_and_ordered(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("\n".join(f"pw{i}" for i in range(10)) + "\n")
        chunks = list(stream_corpus_chunks(str(path), chunk_size=4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        flat = [password for chunk in chunks for password, _ in chunk]
        assert flat == [f"pw{i}" for i in range(10)]

    def test_chunk_size_validated(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("abc\n")
        with pytest.raises(ValueError, match="chunk_size"):
            list(stream_corpus_chunks(str(path), chunk_size=0))

    def test_stream_telemetry(self, tmp_path):
        from repro import obs
        path = tmp_path / "plain.txt"
        path.write_text("\n".join(f"pw{i}" for i in range(10)) + "\n")
        with obs.session() as telemetry:
            list(stream_corpus_chunks(str(path), chunk_size=4))
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["stream.chunks"] == 3
        assert snapshot["counters"]["stream.entries"] == 10
        assert snapshot["histograms"]["stream.chunk.seconds"]["count"] == 3
        assert snapshot["histograms"]["stream.rss_kib"]["count"] == 3

    def test_corpus_iter_chunks(self, corpus):
        chunks = list(corpus.iter_chunks(2))
        assert [len(chunk) for chunk in chunks] == [2, 1]
        merged = {}
        for chunk in chunks:
            for password, count in chunk:
                merged[password] = merged.get(password, 0) + count
        assert merged == dict(corpus.items())
        with pytest.raises(ValueError):
            list(corpus.iter_chunks(0))
