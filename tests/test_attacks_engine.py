"""Tests for the unified attack engine (repro.attacks.engine).

The engine's contract has three load-bearing clauses:

* **bit-identity** — every probability it emits equals
  ``FrozenGrammar.derivation_probability`` on the same derivation,
  with ``==``, not a tolerance;
* **differential equivalence** — its deduplicated guess stream agrees
  with the pre-engine reference enumeration
  (``FuzzyPSM._iter_guesses_reference``) on every positive-probability
  guess;
* **beam soundness** — a floor-bounded beam yields exactly the guesses
  at or above the floor, in the same order as the full enumeration.
"""

import math
import random
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.attacks import (
    AttackEngine,
    Beam,
    FrozenSampler,
    GuessStream,
    guess_stream_for,
)
from repro.core import FuzzyPSM
from repro.metrics.enumeration import descending_products
from repro.meters import registry
from repro.meters.registry import TrainContext

BASE = ["password", "dragon", "monkey", "love", "abc", "sunshine"]
TRAINING = [
    "password1", "Password", "dragon", "monkey12", "love123",
    "p@ssword", "abc123", "drowssap", "PASSWORD", "sunshine",
] * 2

passwords = st.text(
    alphabet=string.ascii_letters + string.digits + "!@#$%^&*",
    min_size=1, max_size=12,
)

#: The differential tests exhaust ``_iter_guesses_reference`` — the
#: pre-engine cross-product enumerator, whose output is exponential in
#: password length/segmentation — so their grammars must stay small.
#: (The engine itself streams lazily and is exercised on the big
#: strategy by the bit-identity tests.)
small_passwords = st.text(
    alphabet=string.ascii_lowercase + string.digits + "@!",
    min_size=1, max_size=6,
)


def trained_meter():
    return FuzzyPSM.train(base_dictionary=BASE, training=TRAINING)


class TestBitIdentity:
    def test_probabilities_equal_frozen_kernel_exactly(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        frozen = meter.frozen_grammar()
        count = 0
        for surface, probability, derivation in engine.derivations(
            limit=500
        ):
            assert probability == frozen.derivation_probability(derivation)
            assert derivation.surface() == surface
            count += 1
        assert count > 50

    @given(st.lists(passwords, min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_bit_identity_on_arbitrary_grammars(self, pws):
        meter = FuzzyPSM.train(base_dictionary=pws, training=pws)
        frozen = meter.frozen_grammar()
        for _, probability, derivation in meter.attack_engine(
        ).derivations(limit=100):
            assert probability == frozen.derivation_probability(derivation)


class TestReferenceDifferential:
    def test_engine_matches_reference_enumeration(self):
        meter = trained_meter()
        reference = {
            surface: probability
            for surface, probability in meter._iter_guesses_reference()
            if probability > 0.0
        }
        engine_guesses = dict(meter.attack_engine().guesses())
        assert set(engine_guesses) == set(reference)
        for surface, probability in engine_guesses.items():
            assert probability == pytest.approx(
                reference[surface], rel=1e-9
            )

    @given(st.lists(small_passwords, min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_differential_on_arbitrary_grammars(self, pws):
        meter = FuzzyPSM.train(base_dictionary=pws, training=pws)
        reference = {
            surface: probability
            for surface, probability in meter._iter_guesses_reference()
            if probability > 0.0
        }
        engine_guesses = dict(meter.attack_engine().guesses(limit=2000))
        if len(engine_guesses) < 2000:  # exhaustive: sets must agree
            assert set(engine_guesses) == set(reference)
        for surface, probability in engine_guesses.items():
            assert probability == pytest.approx(
                reference[surface], rel=1e-9
            )

    def test_stream_is_descending_and_unique(self):
        meter = trained_meter()
        stream = list(meter.attack_engine().guesses(limit=400))
        probabilities = [p for _, p in stream]
        assert probabilities == sorted(probabilities, reverse=True)
        surfaces = [s for s, _ in stream]
        assert len(surfaces) == len(set(surfaces))

    def test_guesses_match_measured_probability(self):
        """Stream probability == ``meter.probability`` whenever the
        canonical parse recovers the generating derivation.

        (They *can* legitimately differ: the stream scores the
        derivation it generated, while measurement scores the
        deterministic re-parse — e.g. a leet-of-reversed surface like
        ``drowss@p`` re-parses into fallback segments and measures
        0.0.  That asymmetry is the fuzzy model's, not the engine's.)
        """
        meter = trained_meter()
        matched = 0
        for surface, probability, derivation in meter.attack_engine(
        ).derivations(limit=100):
            if meter.parse(surface).to_derivation() == derivation:
                assert probability == meter.probability(surface)
                matched += 1
        assert matched > 50


class TestBeam:
    def test_floor_beam_equals_full_stream_above_floor(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        full = list(engine.guesses(limit=300, dedupe=False))
        floor = full[min(len(full), 150) - 1][1]
        expected = []
        for item in engine.guesses(dedupe=False):
            if item[1] < floor:
                break
            expected.append(item)
        beamed = list(engine.guesses(beam=Beam(floor=floor), dedupe=False))
        assert beamed == expected

    @given(st.lists(small_passwords, min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_floor_beam_differential_on_arbitrary_grammars(self, pws):
        meter = FuzzyPSM.train(base_dictionary=pws, training=pws)
        engine = meter.attack_engine()
        full = list(engine.guesses(limit=120, dedupe=False))
        if not full:
            return
        floor = full[len(full) // 2][1]
        expected = []
        for item in engine.guesses(dedupe=False):
            if item[1] < floor:
                break
            expected.append(item)
        beamed = list(
            engine.guesses(beam=Beam(floor=floor), dedupe=False)
        )
        assert beamed == expected

    def test_floor_drops_are_counted(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        stream = engine.guesses(beam=Beam(floor=1e-3))
        list(stream)
        assert stream.stats.floor_dropped > 0
        assert stream.stats.dropped_mass > 0.0

    def test_width_beam_yields_descending_subset(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        full = set(engine.guesses(dedupe=False))
        stream = engine.guesses(beam=Beam(width=2), dedupe=False)
        narrowed = list(stream)
        probabilities = [p for _, p in narrowed]
        assert probabilities == sorted(probabilities, reverse=True)
        assert set(narrowed) <= full
        assert stream.stats.width_dropped > 0

    def test_beam_validation(self):
        with pytest.raises(ValueError):
            Beam(width=0)
        with pytest.raises(ValueError):
            Beam(floor=-0.1)

    def test_beam_telemetry_namespace(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        with obs.session() as telemetry:
            list(engine.guesses(beam=Beam(floor=1e-3)))
            counters = telemetry.snapshot()["counters"]
        assert counters["attack.enum.yields"] > 0
        assert counters["attack.beam.floor_dropped"] > 0
        assert counters["attack.beam.dropped_mass_ppb"] > 0


class TestDescendingProductsOracle:
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=1, max_size=5,
            ),
            min_size=1, max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_sort(self, raw_factors):
        factors = [
            [
                (index, probability)
                for index, probability in enumerate(
                    sorted(values, reverse=True)
                )
            ]
            for values in raw_factors
        ]
        result = list(descending_products(factors))
        brute = {}

        def walk(position, chosen, product):
            if position == len(factors):
                brute[tuple(chosen)] = product
                return
            for index, probability in factors[position]:
                walk(position + 1, chosen + [index], product * probability)

        walk(0, [], 1.0)
        assert {values for values, _ in result} == set(brute)
        probabilities = [p for _, p in result]
        assert probabilities == sorted(probabilities, reverse=True)
        for values, probability in result:
            assert probability == brute[values]


class TestSampler:
    def test_sample_probability_matches_measure(self):
        meter = trained_meter()
        rng = random.Random(7)
        for _ in range(50):
            surface, probability = meter.attack_engine().sample(rng)
            assert probability > 0.0
            assert math.isclose(
                probability, meter.probability(surface), rel_tol=1e-12
            )

    def test_sampler_is_engine_backed(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        assert isinstance(engine.sampler(), FrozenSampler)
        assert engine.sampler() is engine.sampler()  # cached

    def test_untrained_grammar_raises(self):
        meter = FuzzyPSM.train(base_dictionary=[], training=[])
        with pytest.raises(ValueError):
            meter.attack_engine().sample(random.Random(0))

    def test_sample_telemetry(self):
        meter = trained_meter()
        engine = meter.attack_engine()
        with obs.session() as telemetry:
            for _ in range(10):
                engine.sample(random.Random(3))
            counters = telemetry.snapshot()["counters"]
        # draws counts attempts (rejection redraws included), so ten
        # successful samples register at least ten draws.
        assert counters.get("attack.sample.draws", 0) + counters.get(
            "attack.sample.fallbacks", 0
        ) >= 10


class TestEngineLifecycle:
    def test_engine_rebuilds_after_update(self):
        meter = trained_meter()
        first = meter.attack_engine()
        assert meter.attack_engine() is first  # cached while current
        meter.update("brandnewword99")
        second = meter.attack_engine()
        assert second is not first
        assert second.epoch > first.epoch
        probability = meter.probability("brandnewword99")
        assert probability > 0.0
        # The rebuilt engine enumerates the new password at or above
        # its measured probability (exact enumeration down to a floor).
        assert any(
            surface == "brandnewword99"
            for surface, _ in second.guesses(
                beam=Beam(floor=probability / 2)
            )
        )

    def test_guess_stream_head_and_counters(self):
        meter = trained_meter()
        stream = meter.attack_engine().guesses()
        head = stream.head(10)
        assert len(head) == 10
        assert stream.yielded == 10
        assert stream.name == meter.name

    def test_max_seen_bound_is_forwarded(self):
        meter = trained_meter()
        with obs.session() as telemetry:
            list(meter.attack_engine().guesses(max_seen=2))
            counters = telemetry.snapshot()["counters"]
        assert counters.get("enum.dedup.seen_capped") == 1


class TestGuessStreamFor:
    def test_fuzzy_meter_uses_engine(self):
        meter = trained_meter()
        stream = guess_stream_for(meter, limit=20)
        assert isinstance(stream, GuessStream)
        assert stream.stats is not None
        assert len(list(stream)) == 20

    def test_baseline_meter_wraps_iter_guesses(self):
        pcfg = registry.build_meter(
            "pcfg",
            TrainContext(training=tuple((pw, 1) for pw in TRAINING)),
        )
        stream = guess_stream_for(pcfg, limit=20)
        assert isinstance(stream, GuessStream)
        assert stream.stats is None
        items = list(stream)
        assert 0 < len(items) <= 20
        probabilities = [p for _, p in items]
        assert probabilities == sorted(probabilities, reverse=True)


class TestMeterIntegration:
    def test_iter_guesses_is_engine_backed(self):
        meter = trained_meter()
        via_meter = list(meter.iter_guesses(limit=50))
        via_engine = list(meter.attack_engine().guesses(limit=50))
        assert via_meter == via_engine

    def test_attack_engine_build_telemetry(self):
        meter = trained_meter()
        with obs.session() as telemetry:
            AttackEngine(meter)
            meter.update("zzz123")
            meter.attack_engine()
            counters = telemetry.snapshot()["counters"]
        assert counters.get("attack.engine.builds", 0) >= 1


class TestSnapshotEngine:
    """AttackEngine.from_snapshot: attack from a shared segment."""

    def test_guess_stream_bit_identical_to_direct_engine(self):
        meter = trained_meter()
        direct = list(meter.attack_engine().guesses(limit=500))
        attached = AttackEngine.from_snapshot(
            meter.shared_segment().name
        )
        assert list(attached.guesses(limit=500)) == direct
        assert attached.is_current()  # frozen tables ARE the epoch

    def test_sampler_draws_identically(self):
        meter = trained_meter()
        attached = AttackEngine.from_snapshot(
            meter.shared_segment().name
        )
        direct_rng, attached_rng = random.Random(7), random.Random(7)
        direct_engine = meter.attack_engine()
        direct_draws = [
            direct_engine.sample(direct_rng) for _ in range(50)
        ]
        attached_draws = [
            attached.sample(attached_rng) for _ in range(50)
        ]
        assert attached_draws == direct_draws

    def test_trie_only_segment_is_rejected(self):
        from repro.core.shm import SharedScoringSegment

        meter = trained_meter()
        forward, _ = meter._parser.ensure_compiled_matchers()
        segment = SharedScoringSegment.create(
            epoch=0, forward=forward,
            min_length=meter.trie.min_length,
            flags=meter._parser.flags, parse_cache_size=64,
        )
        try:
            with pytest.raises(ValueError, match="no grammar tables"):
                AttackEngine.from_snapshot(segment.name)
        finally:
            segment.unlink()
