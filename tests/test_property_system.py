"""Property-based tests for system-level invariants.

Covers the corpus container (mass conservation under splits/merges),
the attack simulator (budget monotonicity) and the suggestion engine
(every suggestion honours policy and target) — the invariants the
examples and benches silently rely on.
"""

import random
import string

from hypothesis import assume, given, settings, strategies as st

from repro.attacks.simulator import (
    LockoutPolicy,
    OnlineAttack,
    head_guess_stream,
)
from repro.core.policy import PasswordPolicy
from repro.core.suggestions import suggest_stronger
from repro.datasets.corpus import PasswordCorpus
from repro.meters.nist import NISTMeter

passwords = st.text(
    alphabet=string.ascii_lowercase + string.digits,
    min_size=1, max_size=12,
)

corpora = st.dictionaries(
    passwords, st.integers(min_value=1, max_value=20),
    min_size=1, max_size=30,
).map(PasswordCorpus)


class TestCorpusInvariants:
    @given(corpora, st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_split_conserves_mass(self, corpus, seed):
        parts = corpus.split([0.3, 0.3, 0.4], random.Random(seed))
        assert sum(part.total for part in parts) == corpus.total
        # Per-password counts are conserved too.
        for password in corpus:
            assert sum(
                part.count(password) for part in parts
            ) == corpus.count(password)

    @given(corpora, corpora)
    @settings(max_examples=50)
    def test_merge_conserves_mass(self, first, second):
        merged = first.merged_with(second)
        assert merged.total == first.total + second.total
        for password in set(first) | set(second):
            assert merged.count(password) == (
                first.count(password) + second.count(password)
            )

    @given(corpora)
    @settings(max_examples=50)
    def test_most_common_descending(self, corpus):
        counts = [count for _, count in corpus.most_common()]
        assert counts == sorted(counts, reverse=True)

    @given(corpora)
    @settings(max_examples=50)
    def test_frequencies_sum_to_one(self, corpus):
        total = sum(
            corpus.frequency(password) for password in corpus
        )
        assert abs(total - 1.0) < 1e-9


class TestAttackInvariants:
    @given(corpora, st.integers(1, 50))
    @settings(max_examples=40)
    def test_compromise_monotone_in_budget(self, corpus, budget):
        smaller = OnlineAttack(
            LockoutPolicy(attempts_per_window=budget)
        ).run(head_guess_stream(corpus), corpus)
        larger = OnlineAttack(
            LockoutPolicy(attempts_per_window=budget + 10)
        ).run(head_guess_stream(corpus), corpus)
        assert (
            larger.accounts_compromised
            >= smaller.accounts_compromised
        )

    @given(corpora)
    @settings(max_examples=40)
    def test_self_attack_with_full_budget_compromises_all(self, corpus):
        outcome = OnlineAttack(
            LockoutPolicy(attempts_per_window=corpus.unique)
        ).run(head_guess_stream(corpus), corpus)
        assert outcome.accounts_compromised == corpus.total
        assert outcome.unique_passwords_recovered == corpus.unique

    @given(corpora, st.integers(1, 20))
    @settings(max_examples=40)
    def test_compromised_never_exceeds_accounts(self, corpus, budget):
        outcome = OnlineAttack(
            LockoutPolicy(attempts_per_window=budget)
        ).run(head_guess_stream(corpus), corpus)
        assert 0 <= outcome.accounts_compromised <= corpus.total
        assert 0.0 <= outcome.compromise_rate <= 1.0


class TestSuggestionInvariants:
    @given(st.text(alphabet=string.ascii_lowercase, min_size=4,
                   max_size=8),
           st.integers(12, 20))
    @settings(max_examples=25, deadline=None)
    def test_all_suggestions_meet_target(self, password, bits):
        meter = NISTMeter()
        suggestions = suggest_stronger(
            meter, password, target_bits=float(bits),
            max_suggestions=4,
        )
        for suggestion in suggestions:
            assert suggestion.entropy_bits >= bits
            assert suggestion.password != password

    @given(st.text(alphabet=string.ascii_lowercase, min_size=6,
                   max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_policy_always_honoured(self, password):
        meter = NISTMeter()
        policy = PasswordPolicy(min_length=6, max_length=10)
        suggestions = suggest_stronger(
            meter, password, target_bits=16.0, policy=policy,
            max_suggestions=6,
        )
        for suggestion in suggestions:
            assert policy.is_allowed(suggestion.password)

    @given(st.text(alphabet=string.ascii_lowercase, min_size=4,
                   max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_edit_counts_bounded(self, password):
        meter = NISTMeter()
        suggestions = suggest_stronger(
            meter, password, target_bits=14.0, max_edits=2,
            max_suggestions=6,
        )
        for suggestion in suggestions:
            assert 1 <= suggestion.edit_count <= 2
