"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSurvey:
    def test_prints_headlines(self, capsys):
        code, out, _ = run_cli(capsys, "survey")
        assert code == 0
        assert "77.38%" in out


class TestScenarios:
    def test_lists_matrix(self, capsys):
        code, out, _ = run_cli(capsys, "scenarios")
        assert code == 0
        assert "ideal-csdn" in out
        assert "13(q)" in out
        assert out.count("\n") >= 18


class TestGenerateAndStats:
    def test_generate_writes_file(self, capsys, tmp_path):
        path = str(tmp_path / "csdn.txt")
        code, out, _ = run_cli(
            capsys, "generate", "csdn", "--total", "500",
            "--output", path,
        )
        assert code == 0
        assert "500 entries" in out
        assert (tmp_path / "csdn.txt").exists()

    def test_stats_on_generated_corpus(self, capsys, tmp_path):
        path = str(tmp_path / "csdn.txt")
        run_cli(capsys, "generate", "csdn", "--total", "500",
                "--output", path)
        code, out, _ = run_cli(capsys, "stats", path, "--top", "5")
        assert code == 0
        assert "Top-5 passwords" in out
        assert "Character composition" in out
        assert "Length distribution" in out


class TestTrainMeasureGuess:
    @pytest.fixture()
    def corpora(self, capsys, tmp_path):
        base = str(tmp_path / "base.txt")
        training = str(tmp_path / "train.txt")
        run_cli(capsys, "generate", "tianya", "--total", "2000",
                "--output", base)
        run_cli(capsys, "generate", "csdn", "--total", "1000",
                "--output", training)
        return base, training

    def test_train_fuzzy_and_measure(self, capsys, tmp_path, corpora):
        base, training = corpora
        model = str(tmp_path / "model.json")
        code, out, _ = run_cli(
            capsys, "train", "--training", training, "--base", base,
            "--output", model,
        )
        assert code == 0
        assert "fuzzyPSM" in out
        code, out, _ = run_cli(
            capsys, "measure", "--model", model, "123456789", "zzz!!!",
        )
        assert code == 0
        assert "123456789" in out
        assert "probability" in out

    def test_train_fuzzy_requires_base(self, capsys, tmp_path, corpora):
        _, training = corpora
        code, _, err = run_cli(
            capsys, "train", "--training", training,
            "--output", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "--base" in err

    def test_train_pcfg_and_guess(self, capsys, tmp_path, corpora):
        _, training = corpora
        model = str(tmp_path / "pcfg.json")
        code, _, _ = run_cli(
            capsys, "train", "--training", training, "--kind", "pcfg",
            "--output", model,
        )
        assert code == 0
        code, out, _ = run_cli(
            capsys, "guess", "--model", model, "-n", "10",
        )
        assert code == 0
        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 10
        assert lines[0].startswith("1\t")

    def test_train_fuzzy_with_extensions(self, capsys, tmp_path,
                                         corpora):
        base, training = corpora
        model = str(tmp_path / "ext.json")
        code, _, _ = run_cli(
            capsys, "train", "--training", training, "--base", base,
            "--allow-reverse", "--allow-allcaps", "--output", model,
        )
        assert code == 0
        from repro.persistence import load_meter
        loaded = load_meter(model)
        assert loaded.config.allow_reverse
        assert loaded.config.allow_allcaps

    def test_train_markov(self, capsys, tmp_path, corpora):
        _, training = corpora
        model = str(tmp_path / "markov.json")
        code, out, _ = run_cli(
            capsys, "train", "--training", training, "--kind", "markov",
            "--order", "2", "--smoothing", "laplace",
            "--output", model,
        )
        assert code == 0
        assert "Markov" in out


class TestMeters:
    SEED_KINDS = (
        "fuzzypsm", "ideal", "keepsm", "markov", "nist", "pcfg",
        "zxcvbn",
    )

    def test_lists_registered_meters(self, capsys):
        code, out, _ = run_cli(capsys, "meters")
        assert code == 0
        assert "registered meters" in out
        for kind in self.SEED_KINDS:
            assert kind in out
        # The capability column uses the registry's value spellings.
        assert "batch-scorable" in out
        assert "persistable" in out

    def test_json_listing(self, capsys):
        import json as json_module
        code, out, _ = run_cli(capsys, "meters", "--format", "json")
        assert code == 0
        listing = json_module.loads(out)
        assert set(self.SEED_KINDS) <= set(listing)
        fuzzy = listing["fuzzypsm"]
        assert fuzzy["capabilities"] == [
            "batch-scorable", "binary-persistable", "parallel-scorable",
            "persistable", "stream-trainable", "trainable", "updatable",
        ]
        assert fuzzy["requires_base_dictionary"] is True
        assert listing["zxcvbn"]["requires_base_dictionary"] is False
        assert all(entry["summary"] for entry in listing.values())


class TestExperiment:
    def test_small_scenario_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "experiment", "ideal-csdn",
            "--corpus-size", "2000", "--base-corpus-size", "8000",
            "--min-frequency", "2",
        )
        assert code == 0
        assert "13(h)" in out
        assert "ranking:" in out
        assert "fuzzyPSM" in out

    def test_seed_sweep(self, capsys):
        code, out, _ = run_cli(
            capsys, "experiment", "ideal-csdn",
            "--corpus-size", "2000", "--base-corpus-size", "8000",
            "--min-frequency", "2", "--seeds", "1,2",
        )
        assert code == 0
        assert "across seeds [1, 2]" in out
        assert "mean rank" in out

    def test_seed_sweep_validation(self, capsys):
        code, _, err = run_cli(
            capsys, "experiment", "ideal-csdn", "--seeds", "a,b",
        )
        assert code == 2
        assert "comma-separated integers" in err


class TestCoachAttackProfile:
    @pytest.fixture()
    def trained_model(self, capsys, tmp_path):
        base = str(tmp_path / "base.txt")
        training = str(tmp_path / "train.txt")
        model = str(tmp_path / "model.json")
        run_cli(capsys, "generate", "rockyou", "--total", "3000",
                "--output", base)
        run_cli(capsys, "generate", "yahoo", "--total", "1500",
                "--output", training)
        run_cli(capsys, "train", "--training", training, "--base",
                base, "--output", model)
        return model, training

    def test_coach(self, capsys, trained_model):
        model, _ = trained_model
        code, out, _ = run_cli(
            capsys, "coach", "--model", model,
            "--target-bits", "18", "123456",
        )
        assert code == 0
        assert "original" in out or "already" in out

    def test_attack_simulate(self, capsys, trained_model, tmp_path):
        model, _ = trained_model
        victims = str(tmp_path / "victims.txt")
        run_cli(capsys, "generate", "yahoo", "--total", "1000",
                "--seed", "3", "--output", victims)
        code, out, _ = run_cli(
            capsys, "attack", "simulate", "--model", model,
            "--victims", victims, "--lockout", "50",
            "--hash", "bcrypt", "--max-guesses", "20000",
        )
        assert code == 0
        assert "online" in out
        assert "offline (bcrypt" in out

    def test_attack_enumerate(self, capsys, trained_model):
        model, _ = trained_model
        code, out, err = run_cli(
            capsys, "attack", "enumerate", "--model", model,
            "-n", "25", "--beam-width", "500", "--stats",
        )
        assert code == 0
        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 25
        probabilities = [float(line.split("\t")[1]) for line in lines]
        assert probabilities == sorted(probabilities, reverse=True)
        assert "pops=" in err and "dropped_mass=" in err

    def test_attack_masks(self, capsys, trained_model, tmp_path):
        model, _ = trained_model
        mask_file = str(tmp_path / "masks.json")
        code, out, _ = run_cli(
            capsys, "attack", "masks", "--model", model,
            "--source-guesses", "500", "--top", "5",
            "--output", mask_file,
        )
        assert code == 0
        assert "top masks" in out
        assert "substitution rules" in out
        from repro.persistence import load_mask_set
        mask_set = load_mask_set(mask_file)
        assert mask_set.entries
        assert mask_set.policy == "efficiency"

    def test_attack_masks_export(self, capsys, trained_model, tmp_path):
        model, _ = trained_model
        mask_file = str(tmp_path / "masks.json")
        export_dir = str(tmp_path / "hashcat")
        code, out, _ = run_cli(
            capsys, "attack", "masks", "--model", model,
            "--source-guesses", "500",
            "--output", mask_file, "--export", export_dir,
        )
        assert code == 0
        assert "hashcat hcmask ->" in out
        from repro.attacks import read_hcmask, read_rules
        from repro.persistence import load_mask_set
        mask_set = load_mask_set(mask_file)
        import os as os_module
        files = sorted(os_module.listdir(export_dir))
        hcmask = [f for f in files if f.endswith(".hcmask")]
        assert hcmask, files
        masks = read_hcmask(
            os_module.path.join(export_dir, hcmask[0])
        )
        assert masks == [entry.mask for entry in mask_set.entries]
        rule_files = [f for f in files if f.endswith(".rule")]
        if mask_set.rules:
            rules = read_rules(
                os_module.path.join(export_dir, rule_files[0])
            )
            assert rules == [r.rule for r in mask_set.rules]

    def test_attack_crossover(self, capsys, trained_model, tmp_path):
        model, training = trained_model
        baseline = str(tmp_path / "pcfg.json")
        run_cli(capsys, "train", "--kind", "pcfg",
                "--training", training, "--output", baseline)
        victims = str(tmp_path / "cross-victims.txt")
        run_cli(capsys, "generate", "yahoo", "--total", "800",
                "--seed", "5", "--output", victims)
        code, out, _ = run_cli(
            capsys, "attack", "crossover", "--model", model,
            "--baseline", baseline, "--victims", victims,
            "--online-budget", "1000",
            "--offline-budget", "10000000",
        )
        assert code == 0
        assert "online cracked fraction" in out
        assert "offline cracked fraction" in out
        assert "crossover" in out
        assert "fuzzyPSM" in out
        assert "PCFG" in out

    def test_profile(self, capsys, trained_model):
        _, training = trained_model
        code, out, _ = run_cli(
            capsys, "profile", training, "--online-budget", "100",
        )
        assert code == 0
        assert "min-entropy" in out
        assert "lambda_100" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["generate", "linkedin", "--output", "x.txt"])


class TestServeModelSpecs:
    """``repro serve --model [NAME=]PATH`` spec parsing and validation."""

    def test_named_and_bare_specs(self):
        from repro.cli import _parse_model_spec

        assert _parse_model_spec("rockyou=/tmp/a.json") == \
            ("rockyou", "/tmp/a.json")
        assert _parse_model_spec("/models/yahoo.json") == \
            ("yahoo", "/models/yahoo.json")
        assert _parse_model_spec("model.bin") == ("model", "model.bin")
        # '=' inside a path (no name before it) stays a bare path.
        assert _parse_model_spec("=x.json")[1] == "=x.json"
        # A path-looking prefix is not a name.
        assert _parse_model_spec("/a/b=c.json") == \
            ("b=c", "/a/b=c.json")

    def test_invalid_model_name_exits_2(self, capsys, tmp_path):
        from repro.core.meter import FuzzyPSM
        from repro.persistence import save_meter
        from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS

        path = str(tmp_path / "bad name.json")
        save_meter(
            FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS), path
        )
        # The bare path's stem ("bad name") is not a valid model name.
        code, _, err = run_cli(
            capsys, "serve", "--model", path, "--port", "0",
        )
        assert code == 2
        assert "bad name" in err
