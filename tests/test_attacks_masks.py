"""Tests for mask/rule compilation and crossover analysis
(repro.attacks.masks).

The offline half of the attack engine never materializes guesses: a
compiled :class:`MaskSet` answers budget queries analytically from
cumulative keyspace.  These tests pin the arithmetic with hand-computed
expectations (keyspaces are exact products of class sizes) and check
the crossover report end to end on synthetic streams where the
online/offline orderings are known by construction.
"""

import json

import pytest

from repro import obs
from repro.attacks.masks import (
    CHARSET_SIZES,
    MASK_POLICIES,
    CrossoverReport,
    MaskEntry,
    MaskSet,
    RuleEntry,
    compile_mask_set,
    compile_rules,
    crossover_report,
    decade_checkpoints,
    export_hashcat,
    mask_keyspace,
    mask_of,
    read_hcmask,
    read_rules,
)
from repro.core import FuzzyPSM
from repro.core.meter import FuzzyPSMConfig
from repro.datasets.corpus import PasswordCorpus
from repro.persistence import load_mask_set, save_mask_set

BASE = ["password", "dragon", "monkey", "love", "abc", "sunshine"]
TRAINING = [
    "password1", "Password", "dragon", "monkey12", "love123",
    "p@ssword", "abc123", "drowssap", "PASSWORD", "sunshine",
] * 2


class TestMaskOf:
    def test_classifies_all_four_classes(self):
        assert mask_of("Pass12!") == "?u?l?l?l?d?d?s"
        assert mask_of("abc") == "?l?l?l"
        assert mask_of("123") == "?d?d?d"
        assert mask_of("@ !") == "?s?s?s"

    def test_empty_password_has_empty_mask(self):
        assert mask_of("") == ""


class TestMaskKeyspace:
    def test_products_of_class_sizes(self):
        assert mask_keyspace("?l?d") == 260
        assert mask_keyspace("?l?l?l") == 26**3
        assert mask_keyspace("?u?s") == 26 * 33
        assert mask_keyspace("") == 1

    def test_class_sizes_cover_printable_ascii(self):
        assert sum(CHARSET_SIZES.values()) == 95

    def test_malformed_masks_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            mask_keyspace("?l?")
        with pytest.raises(ValueError, match="unknown mask token"):
            mask_keyspace("?l?x")


class TestMaskEntry:
    def test_efficiency_is_mass_per_candidate(self):
        entry = MaskEntry("?d?d", 100, 0.25, 7)
        assert entry.efficiency == 0.0025


class TestCompileMaskSet:
    GUESSES = [
        ("abc", 0.4),      # ?l?l?l
        ("xyz", 0.2),      # ?l?l?l (accumulates)
        ("12", 0.3),       # ?d?d
        ("", 0.5),         # skipped: empty surface
        ("A!", 0.1),       # ?u?s
    ]

    def test_aggregates_mass_and_observed(self):
        mask_set = compile_mask_set(self.GUESSES, policy="mass")
        by_mask = {entry.mask: entry for entry in mask_set.entries}
        assert set(by_mask) == {"?l?l?l", "?d?d", "?u?s"}
        letters = by_mask["?l?l?l"]
        assert letters.probability == pytest.approx(0.6)
        assert letters.observed == 2
        assert letters.keyspace == 26**3
        assert mask_set.source_guesses == 4  # empty surface not counted

    def test_policy_orderings(self):
        by_policy = {
            policy: [
                entry.mask
                for entry in compile_mask_set(
                    self.GUESSES, policy=policy
                ).entries
            ]
            for policy in MASK_POLICIES
        }
        # mass: 0.6 > 0.3 > 0.1
        assert by_policy["mass"] == ["?l?l?l", "?d?d", "?u?s"]
        # efficiency: 0.3/100 > 0.1/858 > 0.6/17576
        assert by_policy["efficiency"] == ["?d?d", "?u?s", "?l?l?l"]
        # keyspace: 100 < 858 < 17576
        assert by_policy["keyspace"] == ["?d?d", "?u?s", "?l?l?l"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            compile_mask_set(self.GUESSES, policy="entropy")
        with pytest.raises(ValueError, match="unknown policy"):
            MaskSet([], policy="entropy", source_guesses=0)

    def test_max_masks_truncates_and_counts(self):
        with obs.session() as telemetry:
            mask_set = compile_mask_set(
                self.GUESSES, policy="mass", max_masks=1
            )
            counters = telemetry.snapshot()["counters"]
        assert len(mask_set.entries) == 1
        assert mask_set.entries[0].mask == "?l?l?l"
        assert counters["attack.masks.compiled"] == 1
        assert counters["attack.masks.source_guesses"] == 4
        assert counters["attack.masks.truncated"] == 2


class TestMaskSetQueries:
    def build(self):
        return MaskSet(
            [
                MaskEntry("?d", 10, 0.5, 5),
                MaskEntry("?l?l", 676, 0.3, 3),
            ],
            policy="mass",
            source_guesses=8,
        )

    def test_total_keyspace(self):
        assert self.build().total_keyspace == 686
        assert MaskSet([], "mass", 0).total_keyspace == 0

    def test_guesses_to_mask_index(self):
        masks = self.build()
        assert masks.guesses_to_mask_index(0) == 0
        assert masks.guesses_to_mask_index(9) == 0
        assert masks.guesses_to_mask_index(10) == 1
        assert masks.guesses_to_mask_index(685) == 1
        assert masks.guesses_to_mask_index(686) == 2
        assert masks.guesses_to_mask_index(10**10) == 2
        with pytest.raises(ValueError):
            masks.guesses_to_mask_index(-1)

    def test_executed_fraction(self):
        masks = self.build()
        assert masks.executed_fraction("?d", 5) == 0.5
        assert masks.executed_fraction("?d", 10**6) == 1.0
        # second mask starts after the first's 10 candidates
        assert masks.executed_fraction("?l?l", 10) == 0.0
        assert masks.executed_fraction("?l?l", 348) == pytest.approx(
            0.5
        )
        # not in the set: the modelled attacker never reaches it
        assert masks.executed_fraction("?s?s", 10**6) == 0.0

    def test_coverage_is_expected_cracked_fraction(self):
        masks = self.build()
        victims = PasswordCorpus({"7": 3, "ab": 1})  # ?d x3, ?l?l x1
        # At 5 guesses: ?d half done, ?l?l untouched.
        assert masks.coverage(victims, 5) == pytest.approx(
            (3 * 0.5) / 4
        )
        # Past the total keyspace everything in-set is fully covered.
        assert masks.coverage(victims, 10**6) == 1.0

    def test_coverage_rejects_empty_corpus(self):
        with pytest.raises(ValueError, match="empty victim corpus"):
            self.build().coverage(PasswordCorpus([]), 10)

    def test_coverage_curve_sorts_checkpoints(self):
        masks = self.build()
        victims = PasswordCorpus({"7": 1})
        curve = masks.coverage_curve(victims, [686, 5, 10])
        assert [point.guesses for point in curve] == [5, 10, 686]
        assert [point.cracked_fraction for point in curve] == [
            0.5, 1.0, 1.0,
        ]


class TestPersistence:
    def build(self):
        return MaskSet(
            [MaskEntry("?l?d", 260, 0.125, 4)],
            policy="keyspace",
            source_guesses=9,
            rules=(RuleEntry("sa@", "substitute a -> @", 0.2),),
            source="fuzzyPSM",
        )

    def test_dict_round_trip(self):
        original = self.build()
        restored = MaskSet.from_dict(original.to_dict())
        assert restored.entries == original.entries
        assert restored.rules == original.rules
        assert restored.policy == "keyspace"
        assert restored.source == "fuzzyPSM"
        assert restored.source_guesses == 9

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "masks.json")
        original = self.build()
        save_mask_set(original, path)
        restored = load_mask_set(path)
        assert restored.entries == original.entries
        assert restored.rules == original.rules
        assert restored.total_keyspace == original.total_keyspace

    def test_envelope_validation(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all{")
        with pytest.raises(ValueError, match="not a valid mask-set"):
            load_mask_set(str(bad))

        versioned = tmp_path / "version.json"
        versioned.write_text(json.dumps(
            {"format_version": 99, "kind": "maskset", "maskset": {}}
        ))
        with pytest.raises(ValueError, match="format version"):
            load_mask_set(str(versioned))

        kinded = tmp_path / "kind.json"
        kinded.write_text(json.dumps(
            {"format_version": 1, "kind": "meter", "maskset": {}}
        ))
        with pytest.raises(ValueError, match="not a mask-set file"):
            load_mask_set(str(kinded))

        bodyless = tmp_path / "body.json"
        bodyless.write_text(json.dumps(
            {"format_version": 1, "kind": "maskset", "maskset": []}
        ))
        with pytest.raises(ValueError, match="must be an object"):
            load_mask_set(str(bodyless))


class TestHashcatExport:
    def build(self):
        return MaskSet(
            [
                MaskEntry("?d?d", 100, 0.3, 7),
                MaskEntry("?l?l?l", 26**3, 0.6, 2),
                MaskEntry("?u?s", 26 * 33, 0.1, 1),
            ],
            policy="mass",
            source_guesses=10,
            rules=(
                RuleEntry(":", "keep the word as-is", 0.8),
                RuleEntry("sa@", "substitute a -> @", 0.2),
            ),
            source="fuzzyPSM",
        )

    def test_round_trip_against_the_json_envelope(self, tmp_path):
        original = self.build()
        directory = str(tmp_path / "hc")
        written = export_hashcat(original, directory)
        envelope = str(tmp_path / "masks.json")
        save_mask_set(original, envelope)
        restored = load_mask_set(envelope)
        assert read_hcmask(written["hcmask"]) == [
            entry.mask for entry in restored.entries
        ]
        assert read_rules(written["rule"]) == [
            rule.rule for rule in restored.rules
        ]

    def test_stem_defaults_to_source(self, tmp_path):
        written = export_hashcat(self.build(), str(tmp_path))
        assert written["hcmask"].endswith("fuzzyPSM.hcmask")
        assert written["rule"].endswith("fuzzyPSM.rule")
        named = export_hashcat(self.build(), str(tmp_path), stem="x")
        assert named["hcmask"].endswith("x.hcmask")

    def test_ruleless_set_writes_no_rule_file(self, tmp_path):
        mask_set = MaskSet(
            [MaskEntry("?d?d", 100, 0.5, 3)],
            policy="mass", source_guesses=3,
        )
        written = export_hashcat(mask_set, str(tmp_path))
        assert set(written) == {"hcmask"}
        assert read_hcmask(written["hcmask"]) == ["?d?d"]

    def test_comments_and_blanks_are_skipped(self, tmp_path):
        path = tmp_path / "hand.hcmask"
        path.write_text("# banner\n\n?l?d\n# note\n?u?u\n")
        assert read_hcmask(str(path)) == ["?l?d", "?u?u"]

    def test_corrupt_mask_file_fails_on_read(self, tmp_path):
        path = tmp_path / "bad.hcmask"
        path.write_text("?l?x\n")
        with pytest.raises(ValueError, match="unknown mask token"):
            read_hcmask(str(path))


class TestCompileRules:
    def test_rules_from_trained_grammar(self):
        meter = FuzzyPSM.train(
            base_dictionary=BASE,
            training=TRAINING,
            config=FuzzyPSMConfig(
                allow_reverse=True, allow_allcaps=True
            ),
        )
        rules = compile_rules(meter.frozen_grammar())
        lines = [rule.rule for rule in rules]
        assert ":" in lines          # pass-through is always present
        assert "c" in lines          # "Password" observed
        assert "u" in lines          # "PASSWORD" observed
        assert "r" in lines          # "drowssap" observed
        assert "sa@" in lines        # "p@ssword" observed
        probabilities = [rule.probability for rule in rules]
        assert probabilities == sorted(probabilities, reverse=True)
        assert all(probability > 0.0 for probability in probabilities)
        assert all(rule.description for rule in rules)

    def test_unobserved_transformations_dropped(self):
        meter = FuzzyPSM.train(
            base_dictionary=["password"], training=["password1"]
        )
        lines = [
            rule.rule
            for rule in compile_rules(meter.frozen_grammar())
        ]
        assert lines == [":"]


class TestDecadeCheckpoints:
    def test_powers_of_ten_inclusive(self):
        assert decade_checkpoints(10**4) == [1, 10, 100, 1000, 10000]
        assert decade_checkpoints(5000, start=10) == [
            10, 100, 1000, 5000,
        ]
        assert decade_checkpoints(1) == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            decade_checkpoints(5, start=10)
        with pytest.raises(ValueError):
            decade_checkpoints(10, start=0)


class TestCrossoverReport:
    def test_needs_two_meters_and_wider_offline_budget(self):
        victims = PasswordCorpus({"aa": 1})
        with pytest.raises(ValueError, match="at least two"):
            crossover_report([("solo", [("aa", 1.0)])], victims)
        with pytest.raises(ValueError, match="offline budget"):
            crossover_report(
                [("a", [("aa", 1.0)]), ("b", [("bb", 1.0)])],
                victims,
                online_budget=100,
                offline_budget=100,
            )

    def test_offline_crossover_by_construction(self):
        """Meter A wins online; meter B's masks win offline.

        A materializes the victim ``aa`` immediately but never emits a
        symbol mask, capping its offline coverage at 0.5.  B cracks
        nothing within the online horizon, yet its two masks cover both
        victim masks, so past their combined keyspace (~23k) it covers
        everything — the ordering flips on the offline grid.
        """
        victims = PasswordCorpus({"aa": 5, "zz!": 5})
        report = crossover_report(
            [
                ("alpha", [("aa", 0.5)]),
                ("bravo", [("cc", 0.2), ("yy#", 0.3)]),
            ],
            victims,
            online_budget=10,
            offline_budget=10**6,
            policy="mass",
        )
        assert isinstance(report, CrossoverReport)
        alpha, bravo = report.curves
        assert alpha.name == "alpha" and bravo.name == "bravo"
        assert alpha.mask_set.source == "alpha"

        # Online: A cracks aa at guess one, B cracks nothing.
        assert [p.guesses for p in alpha.online] == [1, 10]
        assert alpha.online_fraction() == 0.5
        assert bravo.online_fraction() == 0.0
        assert report.online_crossover is None

        # Offline: B overtakes once both its masks are exhausted.
        assert [p.guesses for p in alpha.offline] == [
            10, 100, 1000, 10**4, 10**5, 10**6,
        ]
        assert alpha.offline_fraction() == 0.5
        assert bravo.offline_fraction() == 1.0
        assert report.offline_crossover is not None
        guesses, fraction_a, fraction_b = report.offline_crossover
        assert guesses == 10**5
        assert fraction_a == 0.5
        assert fraction_b == 1.0

    def test_enumerate_limit_bounds_materialization(self):
        victims = PasswordCorpus({"aa": 1, "bb": 1})

        def endless():
            while True:
                yield ("aa", 0.1)

        report = crossover_report(
            [("a", endless()), ("b", [("bb", 0.2)])],
            victims,
            online_budget=10,
            offline_budget=1000,
            enumerate_limit=5,
        )
        # The endless stream was cut at max(limit, online_budget).
        assert report.curves[0].mask_set.source_guesses == 10
