"""Unit tests for the published dataset profiles (Tables VII-X)."""

import pytest

from repro.datasets.profiles import (
    COMPOSITION_COLUMNS,
    DATASET_ORDER,
    LENGTH_BUCKETS,
    PROFILES,
    length_bucket,
    profile,
)


class TestRegistry:
    def test_eleven_datasets(self):
        assert len(PROFILES) == 11
        assert len(DATASET_ORDER) == 11

    def test_order_matches_registry(self):
        assert set(DATASET_ORDER) == set(PROFILES)

    def test_lookup_case_insensitive(self):
        assert profile("CSDN") is PROFILES["csdn"]

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            profile("myspace")


class TestTableVII:
    """Unique/total counts and metadata transcribed from Table VII."""

    def test_tianya_counts(self):
        p = profile("tianya")
        assert p.unique_passwords == 12_898_437
        assert p.total_passwords == 30_901_241

    def test_rockyou_counts(self):
        p = profile("rockyou")
        assert p.unique_passwords == 14_326_970
        assert p.total_passwords == 32_581_870

    def test_faithwriters_smallest(self):
        smallest = min(
            PROFILES.values(), key=lambda p: p.total_passwords
        )
        assert smallest.name == "faithwriters"

    def test_total_corpus_size(self):
        # The paper reports 97.43 million passwords overall.
        total = sum(p.total_passwords for p in PROFILES.values())
        assert total == pytest.approx(97.4e6, rel=0.01)

    def test_languages(self):
        chinese = {p.name for p in PROFILES.values()
                   if p.language == "Chinese"}
        assert chinese == {"tianya", "dodonew", "csdn", "zhenai", "weibo"}

    def test_duplication_factor(self):
        p = profile("tianya")
        assert p.duplication_factor == pytest.approx(
            30_901_241 / 12_898_437
        )
        assert all(
            p.duplication_factor >= 1.0 for p in PROFILES.values()
        )


class TestTableVIII:
    def test_every_profile_has_top10(self):
        for p in PROFILES.values():
            assert len(p.top10) == 10
            assert len(set(p.top10)) == 10

    def test_known_heads(self):
        assert profile("csdn").top10[0] == "123456789"
        assert profile("tianya").top10[0] == "123456"
        assert profile("faithwriters").top10[1] == "writer"

    def test_top10_share_in_range(self):
        for p in PROFILES.values():
            assert 0.0 < p.top10_share < 0.2

    def test_csdn_most_concentrated(self):
        # Table VIII: CSDN's top-10 covers 10.44%, the highest share.
        top = max(PROFILES.values(), key=lambda p: p.top10_share)
        assert top.name == "csdn"
        assert top.top10_share == pytest.approx(0.1044)


class TestTableIX:
    def test_all_columns_present(self):
        for p in PROFILES.values():
            assert set(p.composition) == set(COMPOSITION_COLUMNS)

    def test_fractions_in_unit_interval(self):
        for p in PROFILES.values():
            for value in p.composition.values():
                assert 0.0 <= value <= 1.0

    def test_digit_dominance_chinese_vs_english(self):
        # Table IX's headline: Chinese datasets are digit-heavy,
        # English ones letter-heavy.
        assert profile("tianya").composition["^[0-9]+$"] > 0.5
        assert profile("rockyou").composition["^[0-9]+$"] < 0.2
        assert profile("phpbb").composition["^[a-z]+$"] > 0.5
        assert profile("tianya").composition["^[a-z]+$"] < 0.2

    def test_subset_columns_consistent(self):
        # ^[a-z]+$ passwords are a subset of ^[A-Za-z]+$ ones.
        for p in PROFILES.values():
            assert (
                p.composition["^[a-z]+$"]
                <= p.composition["^[A-Za-z]+$"] + 1e-9
            )
            assert (
                p.composition["^[A-Za-z]+$"]
                <= p.composition["^[a-zA-Z0-9]+$"] + 1e-9
            )


class TestTableX:
    def test_all_buckets_present(self):
        for p in PROFILES.values():
            assert set(p.length_distribution) == set(LENGTH_BUCKETS)

    def test_distributions_sum_to_one(self):
        for p in PROFILES.values():
            assert sum(p.length_distribution.values()) == pytest.approx(
                1.0, abs=0.001
            )

    def test_csdn_policy_visible(self):
        # CSDN's length >= 8 policy: almost nothing below 8.
        p = profile("csdn")
        below8 = (
            p.length_distribution["1-5"]
            + p.length_distribution["6"]
            + p.length_distribution["7"]
        )
        assert below8 < 0.03
        assert p.min_length == 8

    def test_singles_max_length(self):
        p = profile("singles")
        assert p.max_length == 8
        assert p.length_distribution["9"] == 0.0


class TestLengthBucket:
    def test_short(self):
        assert length_bucket(1) == "1-5"
        assert length_bucket(5) == "1-5"

    def test_exact(self):
        for length in range(6, 15):
            assert length_bucket(length) == str(length)

    def test_long(self):
        assert length_bucket(15) == "15+"
        assert length_bucket(99) == "15+"
