"""Tests for the reverse transformation rule (the paper's future work).

Sec. IV-C's limitations: "other rules, such as substring movement and
reverse are left as future research."  The extension is config-gated
(``FuzzyPSMConfig(allow_reverse=True)``); with the flag off the meter
must behave exactly as published.
"""

import random

import pytest

from repro.core import FuzzyPSM, FuzzyPSMConfig
from repro.core.grammar import DerivedSegment, FuzzyGrammar
from repro.core.parser import FuzzyParser
from repro.core.trie import PrefixTrie

BASE = ["password", "dragon", "iloveyou", "123qwe", "sunshine"]
TRAINING = [
    "password", "password123", "drowssap", "nogard1", "iloveyou",
    "sunshine", "dragon", "123qwe",
]


@pytest.fixture(scope="module")
def reverse_meter():
    return FuzzyPSM.train(
        BASE, TRAINING, config=FuzzyPSMConfig(allow_reverse=True)
    )


@pytest.fixture(scope="module")
def plain_meter():
    return FuzzyPSM.train(BASE, TRAINING)


class TestDerivedSegmentReverse:
    def test_surface_reversed(self):
        segment = DerivedSegment("password", reversed_word=True)
        assert segment.surface() == "drowssap"

    def test_transformations_before_reversal(self):
        # Capitalize first letter of the base, then reverse.
        segment = DerivedSegment("password", capitalized=True,
                                 reversed_word=True)
        assert segment.surface() == "drowssaP"

    def test_leet_offsets_are_base_relative(self):
        segment = DerivedSegment("password", toggled_offsets=(1,),
                                 reversed_word=True)
        assert segment.surface() == "drowss@p"

    def test_default_not_reversed(self):
        assert DerivedSegment("abc").surface() == "abc"


class TestParserReverse:
    def test_reversed_word_recognised(self, reverse_meter):
        parse = reverse_meter.parse("drowssap")
        segment = parse.segments[0]
        assert segment.base == "password"
        assert segment.reversed_word

    def test_reversed_word_with_leet(self):
        parser = FuzzyParser(PrefixTrie(["password"]),
                             allow_reverse=True)
        # reverse(password) with the 'a' (base offset 1) leeted.
        parse = parser.parse("drowss@p")
        segment = parse.segments[0]
        assert segment.base == "password"
        assert segment.reversed_word
        assert segment.toggled_offsets == (1,)

    def test_forward_reading_preferred_on_tie(self):
        # "level" reversed is "level": palindromes never parse as
        # reversed (excluded from the reversed trie).
        parser = FuzzyParser(PrefixTrie(["level"]), allow_reverse=True)
        parse = parser.parse("level")
        assert not parse.segments[0].reversed_word

    def test_longest_match_wins_across_directions(self):
        # Forward "dra" (stored) vs reversed "dragons" (stored as
        # "snogard" reversed)... construct: stored words "dra" and
        # "snogard"[::-1] = "dragons"; query "snogard".
        parser = FuzzyParser(PrefixTrie(["sno", "dragons"]),
                             allow_reverse=True)
        parse = parser.parse("snogard")
        segment = parse.segments[0]
        assert segment.base == "dragons"
        assert segment.reversed_word

    def test_flag_off_means_fallback(self, plain_meter):
        parse = plain_meter.parse("drowssap")
        assert all(not seg.reversed_word for seg in parse.segments)

    def test_surface_round_trip(self, reverse_meter):
        for password in ("drowssap", "nogard1", "password123"):
            parse = reverse_meter.parse(password)
            assert parse.to_derivation().surface() == password


class TestGrammarReverse:
    def test_reverse_counts_learned(self, reverse_meter):
        grammar = reverse_meter.grammar
        assert grammar.reverse.count(True) >= 2   # drowssap, nogard1
        assert grammar.reverse.count(False) > 0

    def test_reverse_rows_in_rule_table(self, reverse_meter):
        rows = reverse_meter.grammar.rule_table()
        reverse_rows = [row for row in rows if row[0] == "Reverse"]
        assert len(reverse_rows) == 2
        assert sum(p for _, _, p in reverse_rows) == pytest.approx(1.0)

    def test_no_reverse_rows_when_unused(self, plain_meter):
        rows = plain_meter.grammar.rule_table()
        assert all(row[0] != "Reverse" for row in rows)

    def test_serialisation_round_trip(self, reverse_meter):
        clone = FuzzyGrammar.from_dict(reverse_meter.grammar.to_dict())
        parse = reverse_meter.parse("drowssap").to_derivation()
        assert clone.derivation_probability(
            parse
        ) == reverse_meter.grammar.derivation_probability(parse)

    def test_legacy_document_without_reverse_key(self, plain_meter):
        document = plain_meter.grammar.to_dict()
        del document["reverse"]
        clone = FuzzyGrammar.from_dict(document)
        assert clone.derivation_probability(
            plain_meter.parse("password").to_derivation()
        ) == plain_meter.probability("password")


class TestMeterReverse:
    def test_reversed_password_measurable(self, reverse_meter):
        assert reverse_meter.probability("drowssap") > 0.0
        # And a fresh reversal of another base word is derivable too.
        assert reverse_meter.probability("enihsnus") > 0.0

    def test_probability_consistency_both_readings(self, reverse_meter):
        # password appears unreversed too; the reversal costs the
        # reverse factor, so the reversed form is strictly weaker.
        assert (
            reverse_meter.probability("drowssap")
            < reverse_meter.probability("password")
        )

    def test_flag_off_reverse_unreachable(self, plain_meter):
        assert plain_meter.probability("enihsnus") == 0.0

    def test_explain_mentions_reverse(self, reverse_meter):
        explanation = reverse_meter.explain("drowssap")
        assert any(
            "reversed" in description
            for _, description in explanation.segments
        )

    def test_guess_probabilities_match_measure(self, reverse_meter):
        for guess, probability in reverse_meter.iter_guesses(limit=80):
            assert reverse_meter.probability(guess) == pytest.approx(
                probability, rel=1e-9
            ), guess

    def test_guesses_include_reversed_variants(self, reverse_meter):
        guesses = [
            guess for guess, _ in reverse_meter.iter_guesses(limit=300)
        ]
        assert "drowssap" in guesses

    def test_sampling_consistent(self, reverse_meter):
        rng = random.Random(3)
        for _ in range(60):
            password, probability = reverse_meter.sample(rng)
            assert reverse_meter.probability(password) == pytest.approx(
                probability, rel=1e-12
            )

    def test_persistence_round_trip(self, reverse_meter, tmp_path):
        from repro.persistence import load_meter, save_meter
        path = str(tmp_path / "reverse.json")
        save_meter(reverse_meter, path)
        loaded = load_meter(path)
        assert loaded.config.allow_reverse
        assert loaded.probability(
            "drowssap"
        ) == reverse_meter.probability("drowssap")

    def test_update_phase_with_reverse(self, reverse_meter):
        # accept() re-parses with the same reverse-aware parser.
        before = reverse_meter.grammar.reverse.count(True)
        meter = FuzzyPSM.train(
            BASE, TRAINING, config=FuzzyPSMConfig(allow_reverse=True)
        )
        meter.accept("eworole" [::-1])  # fallback; no crash
        meter.accept("nogard9")
        assert meter.grammar.reverse.count(True) >= before
