"""Tests for the whole-program pass (repro.analysis.project).

The :class:`ProjectIndex` is pass 1 of the two-pass linter: a symbol
table, import graph, approximate call graph and multiprocessing-use
map over every discovered file.  These tests pin the index internals
the cross-module rules (FPM012-015) lean on — module naming, symbol
resolution, static MRO walks, the worker-reachability closure — plus
the digest the incremental cache keys on.
"""

from __future__ import annotations

import ast
import pathlib
import pickle
import textwrap

from repro.analysis.project import (
    GRAMMAR_TABLE_ATTRIBUTES,
    ProjectIndex,
    build_project_index,
    module_name_for_path,
    scan_module,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def scan(source, module="pkg.mod", path="pkg/mod.py"):
    tree = ast.parse(textwrap.dedent(source))
    return scan_module(module, path, tree)


def index_of(files):
    """Build an index from ``path -> source`` pairs."""
    return build_project_index(
        [(path, textwrap.dedent(source)) for path, source in files.items()]
    )


class TestModuleNaming:
    def test_src_layout_maps_to_package(self):
        assert module_name_for_path(
            "src/repro/core/grammar.py"
        ) == "repro.core.grammar"
        assert module_name_for_path(
            "/abs/checkout/src/repro/cli.py"
        ) == "repro.cli"

    def test_package_init_names_the_package(self):
        assert module_name_for_path(
            "src/repro/obs/__init__.py"
        ) == "repro.obs"

    def test_bare_roots_keep_their_prefix(self):
        assert module_name_for_path(
            "tests/test_meter.py"
        ) == "tests.test_meter"
        assert module_name_for_path(
            "benchmarks/test_timing.py"
        ) == "benchmarks.test_timing"

    def test_everything_else_falls_back_to_stem(self):
        assert module_name_for_path("/tmp/scratch/demo.py") == "demo"


class TestModuleScanner:
    def test_imports_aliases_and_relative_forms(self):
        info = scan(
            """
            import multiprocessing
            import numpy as np
            from repro.core.grammar import FuzzyGrammar as Grammar
            from . import sibling
            from .helpers import tool
            """,
            module="repro.pkg.mod",
        )
        imports = info.import_map()
        assert imports["multiprocessing"] == "multiprocessing"
        assert imports["np"] == "numpy"
        assert imports["Grammar"] == "repro.core.grammar.FuzzyGrammar"
        assert imports["sibling"] == "repro.pkg.sibling"
        assert imports["tool"] == "repro.pkg.helpers.tool"

    def test_functions_record_calls_globals_and_nesting(self):
        info = scan(
            """
            _STATE = None

            def outer(x):
                def inner(y):
                    return y
                return inner(helper(x))

            def helper(x):
                global _STATE
                _STATE = x
                return x
            """
        )
        functions = info.function_map()
        assert set(functions) == {"outer", "outer.inner", "helper"}
        assert functions["outer.inner"].is_nested
        assert not functions["helper"].is_nested
        assert functions["helper"].global_names == ("_STATE",)
        assert set(functions["outer"].calls) >= {"inner", "helper"}
        assert info.module_globals == ("_STATE",)

    def test_class_surface_and_meter_registration(self):
        info = scan(
            """
            from repro.meters.registry import Capability, register_meter

            @register_meter("toy", capabilities=(Capability.TRAINABLE,))
            class Toy(Base):
                def __init__(self):
                    self._epoch = 0
                    self.structures = {}

                def train(self, data):
                    return self
            """
        )
        (cls,) = info.classes
        assert cls.bases == ("Base",)
        assert set(cls.methods) == {"__init__", "train"}
        assert set(cls.init_attrs) == {"_epoch", "structures"}
        assert cls.meter_registration is not None
        assert cls.meter_registration.kind == "toy"
        assert cls.meter_registration.capabilities == ("TRAINABLE",)

    def test_worker_uses_and_namespaces(self):
        info = scan(
            """
            import multiprocessing
            from repro import obs

            obs.register_namespace("toys")

            def launch(chunks):
                with multiprocessing.Pool(
                    2, initializer=setup, initargs=()
                ) as pool:
                    pool.imap(work, chunks)
                    pool.apply_async(work, (chunks,))
            """
        )
        roles = sorted(
            (use.role, use.target) for use in info.worker_uses
        )
        assert roles == [
            ("initializer", "setup"),
            ("task", "work"),
            ("task", "work"),
        ]
        assert info.namespaces == ("toys",)


PROJECT = {
    "src/pkg/base.py": """
        class Base:
            def shared(self):
                return 0
    """,
    "src/pkg/work.py": """
        import multiprocessing
        from pkg.base import Base

        _TABLE = None


        def _worker_init_table(table):
            global _TABLE
            _TABLE = table


        def task(chunk):
            return helper(chunk)


        def helper(chunk):
            return chunk


        def untouched(chunk):
            return chunk


        class Runner(Base):
            def dispatch(self):
                return self.shared()


        def launch(chunks):
            with multiprocessing.Pool(
                2, initializer=_worker_init_table, initargs=(None,)
            ) as pool:
                return pool.map(task, chunks)
    """,
}


class TestProjectIndex:
    def test_symbol_resolution_prefers_local_definitions(self):
        index = index_of(PROJECT)
        work = index.modules["pkg.work"]
        assert index.resolve_symbol(work, "task") == "pkg.work.task"
        assert index.resolve_symbol(work, "Base") == "pkg.base.Base"
        assert index.resolve_symbol(work, "unknown_name") is None

    def test_find_function_handles_methods(self):
        index = index_of(PROJECT)
        assert index.find_function("pkg.work.task").name == "task"
        assert index.find_function(
            "pkg.work.Runner.dispatch"
        ).owner_class == "Runner"
        assert index.find_function("pkg.work.missing") is None

    def test_static_mro_and_method_lookup(self):
        index = index_of(PROJECT)
        chain, complete = index.class_mro("pkg.work.Runner")
        assert complete
        assert [cls.name for _, cls in chain] == ["Runner", "Base"]
        found, _ = index.find_method("pkg.work.Runner", "shared")
        assert found is not None and found.owner_class == "Base"

    def test_unresolvable_base_marks_mro_incomplete(self):
        index = index_of(
            {
                "src/pkg/orphan.py": """
                    from elsewhere import Alien

                    class Orphan(Alien):
                        pass
                """
            }
        )
        _, complete = index.class_mro("pkg.orphan.Orphan")
        assert not complete

    def test_self_calls_resolve_through_the_mro(self):
        index = index_of(PROJECT)
        work = index.modules["pkg.work"]
        dispatch = work.function_map()["Runner.dispatch"]
        assert index.resolve_call(
            work, dispatch, "self.shared"
        ) == "pkg.base.Base.shared"

    def test_worker_closure_and_blessing(self):
        index = index_of(PROJECT)
        assert "pkg.work.task" in index.worker_entrypoints
        assert (
            "pkg.work._worker_init_table" in index.blessed_initializers
        )
        # task -> helper is in the closure; untouched is not.
        assert "pkg.work.helper" in index.worker_reachable
        assert "pkg.work.untouched" not in index.worker_reachable

    def test_epoch_guarded_classes(self):
        index = index_of(
            {
                "src/pkg/grammar.py": """
                    class Guarded:
                        def __init__(self):
                            self._epoch = 0
                            self.terminals = {}

                    class Unguarded:
                        def __init__(self):
                            self.terminals = {}
                """
            }
        )
        assert index.epoch_guarded_classes == {"pkg.grammar.Guarded"}

    def test_digest_tracks_semantic_content_only(self):
        base = {"src/pkg/a.py": "def f(x):\n    return x\n"}
        same = {
            "src/pkg/a.py": "def f(x):\n    # comment\n    return x\n"
        }
        different = {"src/pkg/a.py": "def g(x):\n    return x\n"}
        digest = build_project_index(list(base.items())).digest
        assert digest
        assert (
            build_project_index(list(same.items())).digest == digest
        )
        assert (
            build_project_index(list(different.items())).digest != digest
        )

    def test_index_is_picklable(self):
        # The parallel pass ships the index to pool workers.
        index = index_of(PROJECT)
        clone = pickle.loads(pickle.dumps(index))
        assert clone.worker_reachable == index.worker_reachable
        assert clone.modules.keys() == index.modules.keys()


class TestIndexOverTheRealRepo:
    def test_real_pool_surface_is_recognised(self):
        files = []
        src = REPO_ROOT / "src" / "repro"
        for path in sorted(src.rglob("*.py")):
            files.append((str(path), path.read_text()))
        index = build_project_index(files)
        blessed = {
            name.rsplit(".", 1)[-1]
            for name in index.blessed_initializers
        }
        assert any(
            name.startswith("_worker_init") or
            name.startswith("_score_worker")
            for name in blessed
        )
        assert index.worker_entrypoints
        assert index.worker_reachable >= index.worker_entrypoints
        # The central namespace registrations in repro.obs.
        assert {
            "meter", "train", "lint", "experiment",
        } <= index.registered_namespaces
        assert "repro.core.grammar.FuzzyGrammar" in (
            index.epoch_guarded_classes
        )

    def test_grammar_table_attribute_set_matches_grammar(self):
        # The shared constant must stay in sync with FuzzyGrammar's
        # actual count tables (FPM011 and FPM013 both key on it).
        from repro.core.grammar import FuzzyGrammar

        grammar = FuzzyGrammar()
        for attribute in GRAMMAR_TABLE_ATTRIBUTES:
            assert hasattr(grammar, attribute), attribute
