"""Unit tests for partial guessing metrics (Bonneau, S&P 2012)."""

import math

import pytest

from repro.datasets.corpus import PasswordCorpus
from repro.metrics.guesswork import (
    alpha_guesswork,
    alpha_work_factor,
    beta_success_rate,
    compare_profiles,
    effective_beta_bits,
    effective_guesswork_bits,
    guessing_profile,
    min_entropy,
    shannon_entropy,
)


@pytest.fixture()
def skewed():
    # p = 0.5, 0.3, 0.2
    return PasswordCorpus(["a"] * 5 + ["b"] * 3 + ["c"] * 2)


@pytest.fixture()
def uniform():
    return PasswordCorpus({f"pw{i:04d}": 1 for i in range(1024)})


class TestMinEntropy:
    def test_skewed(self, skewed):
        assert min_entropy(skewed) == pytest.approx(1.0)

    def test_uniform(self, uniform):
        assert min_entropy(uniform) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            min_entropy(PasswordCorpus([]))


class TestShannon:
    def test_uniform_is_log_n(self, uniform):
        assert shannon_entropy(uniform) == pytest.approx(10.0)

    def test_skewed_below_uniform(self, skewed):
        assert shannon_entropy(skewed) < math.log2(3)

    def test_overstates_guessability(self, uniform):
        """The paper's point (after [17], [18]): Shannon entropy hides
        skew.  A distribution with half its mass on one password still
        has high Shannon entropy but trivial online guessability."""
        head_heavy = PasswordCorpus(
            {"123456": 1024, **{f"pw{i}": 1 for i in range(1024)}}
        )
        assert shannon_entropy(head_heavy) > 5.0
        assert beta_success_rate(head_heavy, 1) == pytest.approx(0.5)


class TestBetaSuccessRate:
    def test_values(self, skewed):
        assert beta_success_rate(skewed, 1) == pytest.approx(0.5)
        assert beta_success_rate(skewed, 2) == pytest.approx(0.8)
        assert beta_success_rate(skewed, 3) == pytest.approx(1.0)

    def test_beta_beyond_support(self, skewed):
        assert beta_success_rate(skewed, 100) == pytest.approx(1.0)

    def test_monotone(self, uniform):
        rates = [beta_success_rate(uniform, b) for b in (1, 10, 100)]
        assert rates == sorted(rates)

    def test_validation(self, skewed):
        with pytest.raises(ValueError):
            beta_success_rate(skewed, 0)

    def test_effective_bits_uniform(self, uniform):
        # Uniform over 2^10: every budget yields 10 bits.
        for beta in (1, 16, 256):
            assert effective_beta_bits(uniform, beta) == pytest.approx(
                10.0
            )

    def test_effective_bits_skew_lowers(self, skewed, uniform):
        assert effective_beta_bits(skewed, 1) < effective_beta_bits(
            uniform, 1
        )


class TestAlphaWorkFactor:
    def test_values(self, skewed):
        assert alpha_work_factor(skewed, 0.5) == 1
        assert alpha_work_factor(skewed, 0.8) == 2
        assert alpha_work_factor(skewed, 1.0) == 3

    def test_uniform(self, uniform):
        assert alpha_work_factor(uniform, 0.5) == 512

    def test_validation(self, skewed):
        with pytest.raises(ValueError):
            alpha_work_factor(skewed, 0.0)
        with pytest.raises(ValueError):
            alpha_work_factor(skewed, 1.5)


class TestAlphaGuesswork:
    def test_full_coverage_is_expected_guesses(self, skewed):
        # G_1 = sum p_i * i = 0.5*1 + 0.3*2 + 0.2*3 = 1.7
        assert alpha_guesswork(skewed, 1.0) == pytest.approx(1.7)

    def test_partial(self, skewed):
        # mu_0.5 = 1, lambda = 0.5: G = 0.5 * 1 + 0.5 * 1 = 1.0
        assert alpha_guesswork(skewed, 0.5) == pytest.approx(1.0)

    def test_effective_bits_uniform_invariant(self, uniform):
        """Bonneau's calibration: G-tilde of a uniform distribution is
        log2(N) at every alpha."""
        for alpha in (0.25, 0.5, 1.0):
            assert effective_guesswork_bits(
                uniform, alpha
            ) == pytest.approx(10.0, abs=0.01)

    def test_skew_lowers_effective_bits(self, skewed):
        assert effective_guesswork_bits(skewed, 0.5) < math.log2(3)


class TestProfiles:
    def test_profile_fields(self, skewed):
        profile = guessing_profile(skewed, online_budget=2)
        assert profile.corpus == "unnamed"
        assert profile.online_success_rate == pytest.approx(0.8)
        assert profile.offline_work_factor == 1

    def test_compare_orders_weakest_first(self, uniform):
        weak = PasswordCorpus(["123456"] * 90 + ["other"] * 10,
                              name="weak")
        profiles = compare_profiles([uniform, weak], online_budget=1)
        assert profiles[0].corpus == "weak"

    def test_synthetic_corpora_ordering(self):
        """CSDN (top-10 share 10.4%) must profile as weaker against an
        online attacker than Rockyou (2.05%) — Table VIII's shares
        directly bound the online success rates."""
        from repro.datasets.synthetic import SyntheticEcosystem
        ecosystem = SyntheticEcosystem(seed=13, population=10_000)
        csdn = ecosystem.generate("csdn", total=6_000)
        rockyou = ecosystem.generate("rockyou", total=6_000)
        assert beta_success_rate(csdn, 10) > beta_success_rate(
            rockyou, 10
        )
