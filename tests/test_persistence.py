"""Unit tests for meter serialisation (save_meter / load_meter)."""

import json

import pytest

from repro.core import FuzzyPSM
from repro.meters.markov import MarkovMeter, Smoothing
from repro.meters.pcfg import PCFGMeter
from repro.persistence import (
    load_meter,
    meter_from_dict,
    meter_to_dict,
    save_meter,
)

PASSWORDS = [
    "password", "password", "password123", "Password123", "p@ssw0rd",
    "123456", "123456", "dragon1", "letmein!", "qwerty12",
]


@pytest.fixture(scope="module")
def fuzzy():
    return FuzzyPSM.train(base_dictionary=PASSWORDS, training=PASSWORDS)


@pytest.fixture(scope="module")
def pcfg():
    return PCFGMeter.train(PASSWORDS)


@pytest.fixture(scope="module")
def markov():
    return MarkovMeter.train(PASSWORDS, order=2,
                             smoothing=Smoothing.LAPLACE)


PROBES = ["password", "password123", "P@ssw0rd9", "dragon1", "zzz!!!"]


class TestRoundTrips:
    def test_fuzzy_round_trip(self, fuzzy, tmp_path):
        path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, path)
        loaded = load_meter(path)
        assert isinstance(loaded, FuzzyPSM)
        for probe in PROBES:
            assert loaded.probability(probe) == fuzzy.probability(probe)

    def test_pcfg_round_trip(self, pcfg, tmp_path):
        path = str(tmp_path / "pcfg.json")
        save_meter(pcfg, path)
        loaded = load_meter(path)
        assert isinstance(loaded, PCFGMeter)
        for probe in PROBES:
            assert loaded.probability(probe) == pcfg.probability(probe)

    def test_markov_round_trip(self, markov, tmp_path):
        path = str(tmp_path / "markov.json")
        save_meter(markov, path)
        loaded = load_meter(path)
        assert isinstance(loaded, MarkovMeter)
        assert loaded.order == markov.order
        assert loaded.smoothing is Smoothing.LAPLACE
        for probe in PROBES:
            assert loaded.probability(probe) == markov.probability(probe)

    def test_markov_control_characters_survive_json(self, markov,
                                                    tmp_path):
        # Contexts contain the \x02 START padding; JSON must keep them.
        path = str(tmp_path / "markov.json")
        save_meter(markov, path)
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        contexts = document["model"]["transitions"][2]
        assert any("\x02" in context for context in contexts)

    def test_fuzzy_guesses_survive_round_trip(self, fuzzy, tmp_path):
        path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, path)
        loaded = load_meter(path)
        original = list(fuzzy.iter_guesses(limit=30))
        restored = list(loaded.iter_guesses(limit=30))
        assert original == restored

    def test_loaded_fuzzy_still_updates(self, fuzzy, tmp_path):
        path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, path)
        loaded = load_meter(path)
        before = loaded.probability("brandnew99")
        loaded.update("brandnew99", count=5)
        assert loaded.probability("brandnew99") > before
        # The original is untouched.
        assert fuzzy.probability("brandnew99") == before


class TestDocumentFormat:
    def test_kind_tags(self, fuzzy, pcfg, markov):
        assert meter_to_dict(fuzzy)["kind"] == "fuzzypsm"
        assert meter_to_dict(pcfg)["kind"] == "pcfg"
        assert meter_to_dict(markov)["kind"] == "markov"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            meter_from_dict(
                {"format_version": 1, "kind": "oracle", "model": {}}
            )

    def test_wrong_version_rejected(self, fuzzy):
        document = meter_to_dict(fuzzy)
        document["format_version"] = 999
        with pytest.raises(ValueError):
            meter_from_dict(document)

    def test_unsupported_meter_type_rejected(self):
        from repro.meters.nist import NISTMeter
        with pytest.raises(TypeError):
            meter_to_dict(NISTMeter())

    def test_document_is_plain_json(self, fuzzy):
        # Must survive a strict JSON round trip (no exotic types).
        document = meter_to_dict(fuzzy)
        restored = json.loads(json.dumps(document))
        clone = meter_from_dict(restored)
        assert clone.probability("password") == fuzzy.probability(
            "password"
        )

    def test_envelope_carries_capability_list(self, fuzzy, pcfg):
        assert meter_to_dict(fuzzy)["capabilities"] == [
            "batch-scorable", "binary-persistable", "parallel-scorable",
            "persistable", "stream-trainable", "trainable", "updatable",
        ]
        assert meter_to_dict(pcfg)["capabilities"] == [
            "batch-scorable", "persistable", "trainable", "updatable",
        ]


class TestDeterministicBytes:
    def test_save_load_save_is_byte_identical(self, fuzzy, markov,
                                              tmp_path):
        for name, meter in [("fuzzy", fuzzy), ("markov", markov)]:
            first = str(tmp_path / f"{name}-1.json")
            second = str(tmp_path / f"{name}-2.json")
            save_meter(meter, first)
            save_meter(load_meter(first), second)
            with open(first, "rb") as handle:
                original = handle.read()
            with open(second, "rb") as handle:
                round_tripped = handle.read()
            assert round_tripped == original

    def test_keys_are_sorted(self, pcfg, tmp_path):
        path = str(tmp_path / "pcfg.json")
        save_meter(pcfg, path)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert text.endswith("\n")
        document = json.loads(text)
        assert text == json.dumps(document, sort_keys=True) + "\n"


class TestLoadErrorPaths:
    def test_truncated_file(self, pcfg, tmp_path):
        path = str(tmp_path / "pcfg.json")
        save_meter(pcfg, path)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(ValueError, match="not a valid meter file"):
            load_meter(path)

    def test_non_object_document(self, tmp_path):
        path = str(tmp_path / "list.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_meter(path)

    def test_unknown_kind_names_the_known_ones(self):
        with pytest.raises(ValueError, match="oracle.*known.*fuzzypsm"):
            meter_from_dict(
                {"format_version": 1, "kind": "oracle", "model": {}}
            )

    def test_non_string_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown meter kind"):
            meter_from_dict(
                {"format_version": 1, "kind": 7, "model": {}}
            )

    def test_non_persistable_kind_rejected(self):
        # zxcvbn is registered, but without the persistable capability:
        # the message must say so rather than claim the kind is unknown.
        with pytest.raises(ValueError,
                           match="without the.*persistable capability"):
            meter_from_dict(
                {"format_version": 1, "kind": "zxcvbn", "model": {}}
            )

    def test_version_checked_before_kind(self):
        with pytest.raises(ValueError, match="format version"):
            meter_from_dict({"kind": "oracle", "model": {}})
