"""Unit tests for meter serialisation (save_meter / load_meter)."""

import json

import pytest

from repro.core import FuzzyPSM
from repro.meters.markov import MarkovMeter, Smoothing
from repro.meters.pcfg import PCFGMeter
from repro.persistence import (
    load_meter,
    meter_from_dict,
    meter_to_dict,
    save_meter,
)

PASSWORDS = [
    "password", "password", "password123", "Password123", "p@ssw0rd",
    "123456", "123456", "dragon1", "letmein!", "qwerty12",
]


@pytest.fixture(scope="module")
def fuzzy():
    return FuzzyPSM.train(base_dictionary=PASSWORDS, training=PASSWORDS)


@pytest.fixture(scope="module")
def pcfg():
    return PCFGMeter.train(PASSWORDS)


@pytest.fixture(scope="module")
def markov():
    return MarkovMeter.train(PASSWORDS, order=2,
                             smoothing=Smoothing.LAPLACE)


PROBES = ["password", "password123", "P@ssw0rd9", "dragon1", "zzz!!!"]


class TestRoundTrips:
    def test_fuzzy_round_trip(self, fuzzy, tmp_path):
        path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, path)
        loaded = load_meter(path)
        assert isinstance(loaded, FuzzyPSM)
        for probe in PROBES:
            assert loaded.probability(probe) == fuzzy.probability(probe)

    def test_pcfg_round_trip(self, pcfg, tmp_path):
        path = str(tmp_path / "pcfg.json")
        save_meter(pcfg, path)
        loaded = load_meter(path)
        assert isinstance(loaded, PCFGMeter)
        for probe in PROBES:
            assert loaded.probability(probe) == pcfg.probability(probe)

    def test_markov_round_trip(self, markov, tmp_path):
        path = str(tmp_path / "markov.json")
        save_meter(markov, path)
        loaded = load_meter(path)
        assert isinstance(loaded, MarkovMeter)
        assert loaded.order == markov.order
        assert loaded.smoothing is Smoothing.LAPLACE
        for probe in PROBES:
            assert loaded.probability(probe) == markov.probability(probe)

    def test_markov_control_characters_survive_json(self, markov,
                                                    tmp_path):
        # Contexts contain the \x02 START padding; JSON must keep them.
        path = str(tmp_path / "markov.json")
        save_meter(markov, path)
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        contexts = document["model"]["transitions"][2]
        assert any("\x02" in context for context in contexts)

    def test_fuzzy_guesses_survive_round_trip(self, fuzzy, tmp_path):
        path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, path)
        loaded = load_meter(path)
        original = list(fuzzy.iter_guesses(limit=30))
        restored = list(loaded.iter_guesses(limit=30))
        assert original == restored

    def test_loaded_fuzzy_still_updates(self, fuzzy, tmp_path):
        path = str(tmp_path / "fuzzy.json")
        save_meter(fuzzy, path)
        loaded = load_meter(path)
        before = loaded.probability("brandnew99")
        loaded.accept("brandnew99", count=5)
        assert loaded.probability("brandnew99") > before
        # The original is untouched.
        assert fuzzy.probability("brandnew99") == before


class TestDocumentFormat:
    def test_kind_tags(self, fuzzy, pcfg, markov):
        assert meter_to_dict(fuzzy)["kind"] == "fuzzypsm"
        assert meter_to_dict(pcfg)["kind"] == "pcfg"
        assert meter_to_dict(markov)["kind"] == "markov"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            meter_from_dict(
                {"format_version": 1, "kind": "oracle", "model": {}}
            )

    def test_wrong_version_rejected(self, fuzzy):
        document = meter_to_dict(fuzzy)
        document["format_version"] = 999
        with pytest.raises(ValueError):
            meter_from_dict(document)

    def test_unsupported_meter_type_rejected(self):
        from repro.meters.nist import NISTMeter
        with pytest.raises(TypeError):
            meter_to_dict(NISTMeter())

    def test_document_is_plain_json(self, fuzzy):
        # Must survive a strict JSON round trip (no exotic types).
        document = meter_to_dict(fuzzy)
        restored = json.loads(json.dumps(document))
        clone = meter_from_dict(restored)
        assert clone.probability("password") == fuzzy.probability(
            "password"
        )
