"""Equivalence suite: compiled (flat-array) trie vs pointer trie.

The compiled trie is an execution-strategy change only — every query
must be bit-for-bit identical to :class:`PrefixTrie`.  These tests
drive both implementations with randomized fuzzy corpora (including
leet-in-base words like ``p@ssword``) and assert identical results.
"""

from __future__ import annotations

import random

import pytest

from repro.core.compiled_trie import CompiledTrie
from repro.core.parser import FuzzyParser
from repro.core.trie import PrefixTrie
from repro.util.leet import LEET_BY_LETTER


WORDS = [
    "password", "p@ssword", "pass", "passw0rd", "word", "love",
    "iloveyou", "dragon", "drag0n", "monkey", "m0nkey", "he11o",
    "hello", "adm1n", "admin", "qwerty", "123qwe", "abc",
    "woaini", "5201314", "letmein",
]


def random_words(rng: random.Random, count: int) -> list:
    letters = "abcdefghijklmnopqrstuvwxyz"
    words = set(WORDS)
    while len(words) < count:
        length = rng.randint(3, 10)
        word = "".join(rng.choice(letters) for _ in range(length))
        if rng.random() < 0.2 and word[0] in LEET_BY_LETTER:
            # Leet-in-base words (Table IV has p@ssword itself).
            word = LEET_BY_LETTER[word[0]] + word[1:]
        words.add(word)
    return sorted(words)


def mutate(rng: random.Random, word: str) -> str:
    """Randomly capitalize / leet-toggle characters of a stored word."""
    out = []
    for offset, ch in enumerate(word):
        roll = rng.random()
        if roll < 0.25 and ch in LEET_BY_LETTER:
            out.append(LEET_BY_LETTER[ch])
        elif roll < 0.4 and offset == 0:
            out.append(ch.upper())
        else:
            out.append(ch)
    return "".join(out)


def random_probes(rng: random.Random, words: list, count: int) -> list:
    suffix_chars = "0123456789!@#.$"
    probes = []
    for _ in range(count):
        word = rng.choice(words)
        suffix = "".join(
            rng.choice(suffix_chars)
            for _ in range(rng.randint(0, 4))
        )
        probes.append(mutate(rng, word) + suffix)
    return probes


@pytest.fixture(scope="module")
def tries():
    rng = random.Random(20160628)
    words = random_words(rng, 3000)
    pointer = PrefixTrie(words)
    return pointer, pointer.compile(), words, rng


class TestBasicQueries:
    def test_len_and_min_length(self, tries):
        pointer, compiled, words, _ = tries
        assert len(compiled) == len(pointer) == len(words)
        assert compiled.min_length == pointer.min_length

    def test_contains(self, tries):
        pointer, compiled, words, _ = tries
        for word in words:
            assert word in compiled
        for probe in ("", "zz", "p@s", "passwordx", 42, None):
            assert (probe in compiled) == (probe in pointer)

    def test_iter_words_lexicographic(self, tries):
        pointer, compiled, words, _ = tries
        assert list(compiled.iter_words()) == list(pointer.iter_words())
        assert list(compiled.iter_words()) == sorted(words)

    def test_longest_exact_prefix(self, tries):
        pointer, compiled, words, rng = tries
        for probe in random_probes(rng, words, 500):
            assert (
                compiled.longest_exact_prefix(probe)
                == pointer.longest_exact_prefix(probe)
            )

    def test_compile_is_a_snapshot(self):
        trie = PrefixTrie(["password"])
        compiled = trie.compile()
        trie.insert("monkey")
        assert "monkey" in trie
        assert "monkey" not in compiled
        assert len(compiled) == 1


class TestFuzzyEquivalence:
    """Property tests over >= 1000 randomized passwords."""

    @pytest.mark.parametrize("allow_capitalization", [True, False])
    @pytest.mark.parametrize("allow_leet", [True, False])
    def test_longest_fuzzy_match_identical(
        self, tries, allow_capitalization, allow_leet
    ):
        pointer, compiled, words, rng = tries
        probes = random_probes(rng, words, 1200)
        probes += ["", "P@ssw0rd123", "DRAGON", "he11o!!", "M0nkey1"]
        for probe in probes:
            expected = pointer.longest_fuzzy_match(
                probe,
                allow_capitalization=allow_capitalization,
                allow_leet=allow_leet,
            )
            actual = compiled.longest_fuzzy_match(
                probe,
                allow_capitalization=allow_capitalization,
                allow_leet=allow_leet,
            )
            assert actual == expected, probe

    def test_fuzzy_matches_same_set(self, tries):
        pointer, compiled, words, rng = tries
        for probe in random_probes(rng, words, 400):
            expected = set(pointer.fuzzy_matches(probe))
            actual = set(compiled.fuzzy_matches(probe))
            assert actual == expected, probe

    def test_start_offset_equals_slicing(self, tries):
        pointer, compiled, words, rng = tries
        for probe in random_probes(rng, words, 300):
            for start in range(min(len(probe), 5)):
                expected = pointer.longest_fuzzy_match(probe[start:])
                actual = compiled.longest_fuzzy_match(probe, start=start)
                assert actual == expected, (probe, start)

    def test_leet_in_base_word(self):
        compiled = PrefixTrie(["p@ssword", "password"]).compile()
        # Observed 'a' must match stored '@' (bidirectional toggles).
        match = compiled.longest_fuzzy_match("passwords")
        assert match.base == "password"
        assert match.toggled_offsets == ()
        match = compiled.longest_fuzzy_match("p@ssword1")
        assert match.base == "p@ssword"
        assert match.toggled_offsets == ()

    def test_tie_breaks_match_pointer_trie(self):
        # Same length, same transformation count -> lexicographic base.
        words = ["abc", "a8c", "obo", "0b0"]
        pointer = PrefixTrie(words)
        compiled = pointer.compile()
        for probe in ("abc1", "a8c1", "obo!", "0b0!", "Abc", "ObO"):
            assert (
                compiled.longest_fuzzy_match(probe)
                == pointer.longest_fuzzy_match(probe)
            ), probe


class TestLayoutEdgeCases:
    def test_empty_trie(self):
        compiled = PrefixTrie().compile()
        assert len(compiled) == 0
        assert list(compiled.iter_words()) == []
        assert "password" not in compiled
        assert compiled.longest_fuzzy_match("password") is None
        assert compiled.fuzzy_matches("password") == []

    def test_out_of_alphabet_probe_chars(self):
        # The packed-key shift is sized to the edge alphabet; ordinals
        # beyond it must read as misses, never alias another node.
        compiled = PrefixTrie(["123", "456"]).compile()
        assert compiled.longest_fuzzy_match("ééé") is None
        assert "Ĕbc" not in compiled
        assert compiled.longest_fuzzy_match("123abc").base == "123"

    def test_digit_only_alphabet_rejects_symbol_partners(self):
        # With a digit-only alphabet the bound sits below ord('@');
        # the '@'->'a' toggle must be a miss, not an aliased hit.
        pointer = PrefixTrie(["111", "000"])
        compiled = pointer.compile()
        for probe in ("@11", "11@", "ooo", "0o0", "aaa"):
            assert (
                compiled.longest_fuzzy_match(probe)
                == pointer.longest_fuzzy_match(probe)
            ), probe

    def test_unicode_words(self):
        words = ["пароль", "密码密码", "motdepasse"]
        pointer = PrefixTrie(words)
        compiled = pointer.compile()
        assert list(compiled.iter_words()) == sorted(words)
        for word in words:
            assert word in compiled
            assert (
                compiled.longest_fuzzy_match(word + "1")
                == pointer.longest_fuzzy_match(word + "1")
            )

    def test_word_at_reconstruction(self, tries):
        _, compiled, words, _ = tries
        assert compiled.word_at(0) == ""
        assert compiled.node_count > len(words)


class TestParserEquivalence:
    """FuzzyParser(use_compiled=True) == FuzzyParser(use_compiled=False)."""

    @pytest.mark.parametrize("flags", [
        {},
        {"allow_capitalization": False},
        {"allow_leet": False},
        {"allow_reverse": True},
        {"allow_allcaps": True},
        {"allow_reverse": True, "allow_allcaps": True},
    ])
    def test_parse_identical(self, tries, flags):
        pointer, _, words, rng = tries
        fast = FuzzyParser(pointer, use_compiled=True, **flags)
        slow = FuzzyParser(pointer, use_compiled=False, **flags)
        probes = random_probes(rng, words, 300)
        probes += ["DRAGON99", "drowssap", "NOGARD", "P@ssw0rd!"]
        for probe in probes:
            assert fast.parse(probe) == slow.parse(probe), probe

    def test_compiled_matcher_is_lazy(self, tries):
        pointer, _, _, _ = tries
        parser = FuzzyParser(pointer, use_compiled=True)
        assert parser.compiled_trie is None
        parser.parse("password")
        assert isinstance(parser.compiled_trie, CompiledTrie)

    def test_no_compile_never_builds(self, tries):
        pointer, _, _, _ = tries
        parser = FuzzyParser(pointer, use_compiled=False)
        parser.parse("password123")
        assert parser.compiled_trie is None
        assert not parser.use_compiled

    def test_reversed_trie_is_lazy(self, tries):
        pointer, _, _, _ = tries
        parser = FuzzyParser(pointer, allow_reverse=True)
        assert not parser.reversed_trie_built
        parser.parse("password")
        assert parser.reversed_trie_built

    def test_reversed_trie_unused_when_reverse_off(self, tries):
        pointer, _, _, rng = tries
        parser = FuzzyParser(pointer)
        for probe in random_probes(rng, list(WORDS), 50):
            parser.parse(probe)
        assert not parser.reversed_trie_built

    def test_parse_cached_equals_parse(self, tries):
        pointer, _, words, rng = tries
        parser = FuzzyParser(pointer, parse_cache_size=64)
        probes = random_probes(rng, words, 200)
        probes.extend(probes[:50])  # force cache hits
        for probe in probes:
            assert parser.parse_cached(probe) == parser.parse(probe)
