"""Unit tests for password composition policies (paper Sec. II-B)."""

import pytest

from repro.core.policy import (
    COMMON_POLICIES,
    PasswordPolicy,
    PolicyViolation,
)
from repro.datasets.corpus import PasswordCorpus


class TestConstruction:
    def test_defaults_match_survey_norm(self):
        policy = PasswordPolicy()
        assert policy.min_length == 6
        assert policy.max_length == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            PasswordPolicy(min_length=0)
        with pytest.raises(ValueError):
            PasswordPolicy(min_length=8, max_length=6)
        with pytest.raises(ValueError):
            PasswordPolicy(alphabet=frozenset())
        with pytest.raises(ValueError):
            PasswordPolicy(required_classes=("emoji",))

    def test_common_policies(self):
        assert COMMON_POLICIES["6-20"].max_length == 20
        assert COMMON_POLICIES["6-16"].max_length == 16
        assert "upper" in COMMON_POLICIES["complex"].required_classes


class TestLengthRules:
    def test_too_short(self):
        policy = PasswordPolicy(min_length=6)
        violations = policy.violations("abc")
        assert [v.rule for v in violations] == ["min_length"]
        assert not policy.is_allowed("abc")

    def test_too_long(self):
        policy = PasswordPolicy(min_length=1, max_length=8)
        assert not policy.is_allowed("a" * 9)
        assert policy.is_allowed("a" * 8)

    def test_boundaries_inclusive(self):
        policy = PasswordPolicy(min_length=6, max_length=20)
        assert policy.is_allowed("a" * 6)
        assert policy.is_allowed("a" * 20)


class TestAlphabetRule:
    def test_printable_ascii_default(self):
        policy = PasswordPolicy()
        assert policy.is_allowed("abcDEF123!@#")
        assert not policy.is_allowed("passéword")  # é outside

    def test_restricted_alphabet(self):
        policy = PasswordPolicy(
            min_length=1, alphabet=frozenset("0123456789")
        )
        assert policy.is_allowed("123456")
        violations = policy.violations("12a456")
        assert any(v.rule == "alphabet" for v in violations)
        assert any("a" in v.message for v in violations)


class TestRequiredClasses:
    def test_require_digit(self):
        policy = PasswordPolicy(required_classes=("digit",))
        assert policy.is_allowed("abc123")
        assert not policy.is_allowed("abcdef")

    def test_require_multiple(self):
        policy = PasswordPolicy(
            min_length=6, required_classes=("upper", "digit", "symbol")
        )
        assert policy.is_allowed("Abc12!")
        missing = {v.rule for v in policy.violations("abcdef")}
        assert missing == {
            "require_upper", "require_digit", "require_symbol"
        }

    def test_violation_messages(self):
        policy = PasswordPolicy(required_classes=("upper",))
        violation = policy.violations("abcdef")[0]
        assert isinstance(violation, PolicyViolation)
        assert "upper" in violation.message


class TestCorpusOperations:
    @pytest.fixture()
    def corpus(self):
        return PasswordCorpus(
            {"123456": 4, "abc": 3, "longenough": 2, "x" * 30: 1},
            name="toy",
        )

    def test_filter_corpus(self, corpus):
        policy = PasswordPolicy(min_length=6, max_length=20)
        filtered = policy.filter_corpus(corpus)
        assert set(filtered) == {"123456", "longenough"}
        assert filtered.count("123456") == 4

    def test_filter_preserves_metadata_and_names(self, corpus):
        policy = PasswordPolicy()
        filtered = policy.filter_corpus(corpus)
        assert "toy" in filtered.name
        assert "6-20" in filtered.name
        named = policy.filter_corpus(corpus, name="clean")
        assert named.name == "clean"

    def test_compliance_rate(self, corpus):
        policy = PasswordPolicy(min_length=6, max_length=20)
        assert policy.compliance_rate(corpus) == pytest.approx(6 / 10)

    def test_compliance_rate_empty(self):
        with pytest.raises(ValueError):
            PasswordPolicy().compliance_rate(PasswordCorpus([]))

    def test_policy_explains_csdn_length_spike(self):
        """The paper attributes CSDN's length-8 spike to its policy;
        filtering a mixed corpus by that policy reproduces the shape."""
        from repro.datasets.synthetic import generate_corpus
        corpus = generate_corpus("weibo", total=2_000, seed=5)
        policy = PasswordPolicy(min_length=8, max_length=64)
        filtered = policy.filter_corpus(corpus)
        assert all(len(pw) >= 8 for pw in filtered)
        assert filtered.total < corpus.total


class TestDescribe:
    def test_plain(self):
        assert PasswordPolicy().describe() == "6-20"

    def test_with_requirements(self):
        policy = PasswordPolicy(required_classes=("digit", "upper"))
        assert policy.describe() == "6-20+digit+upper"
