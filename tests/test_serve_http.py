"""Black-box HTTP suite for the serving layer.

Everything here talks to a real ``ReproServer`` on an ephemeral
loopback port through raw sockets — no internal shortcuts.  The two
core contracts:

* ``/check`` scores are **byte-identical** to direct
  ``FuzzyPSM.probability`` calls (JSON floats round-trip exactly via
  ``repr``), with and without worker processes;
* every malformed request gets a clean 4xx/5xx response and never a
  hung connection.

Plus the ROADMAP-item-5 regression: the server's scoring path is the
frozen-kernel batch default (``probability_many``), never the
per-call dict-table loop.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.serve import ReproServer, ServeConfig

from tests.serve_utils import (
    SERVE_PASSWORDS,
    ServeClient,
    one_shot,
    run,
    running_server,
    train_serve_meter,
)


@pytest.fixture(scope="module")
def meter():
    return train_serve_meter()


@pytest.fixture(scope="module")
def reference_scores(meter):
    """Direct per-call scores, computed before any serving traffic."""
    return {pw: meter.probability(pw) for pw in SERVE_PASSWORDS}


# --- score equivalence --------------------------------------------------


@pytest.mark.parametrize("workers", [0, 1])
def test_check_scores_byte_identical_to_direct(
    meter, reference_scores, workers
):
    async def main():
        config = ServeConfig(workers=workers, batch_window=0.001)
        async with running_server(meter, config) as server:
            async with ServeClient(server.port) as client:
                for password, expected in reference_scores.items():
                    payload = await client.check(password)
                    assert payload["probability"] == expected, password
                    assert payload["password"] == password

    run(main())


def test_concurrent_clients_all_score_correctly(meter, reference_scores):
    """16 concurrent keep-alive clients, interleaved passwords."""
    async def client_loop(port, offset):
        passwords = (SERVE_PASSWORDS[offset:]
                     + SERVE_PASSWORDS[:offset])
        async with ServeClient(port) as client:
            for password in passwords:
                payload = await client.check(password)
                assert (payload["probability"]
                        == reference_scores[password])

    async def main():
        config = ServeConfig(workers=1, batch_window=0.002)
        async with running_server(meter, config) as server:
            await asyncio.gather(*[
                client_loop(server.port, i % len(SERVE_PASSWORDS))
                for i in range(16)
            ])
            status, metrics = await one_shot(
                server.port, "GET", "/metrics"
            )
            assert status == 200
            counters = metrics["counters"]
            assert (counters["serve.batch.requests"]
                    == counters["serve.batch.responses"]
                    == 16 * len(SERVE_PASSWORDS))

    run(main())


def test_empty_password_scores_zero(meter):
    async def main():
        async with running_server(meter) as server:
            status, payload = await one_shot(
                server.port, "POST", "/check", {"password": ""}
            )
            assert status == 200
            assert payload["probability"] == 0.0
            assert payload["entropy_bits"] is None

    run(main())


# --- the other endpoints ------------------------------------------------


def test_suggest_endpoint_matches_direct_call(meter):
    from repro.core.suggestions import suggest_stronger
    import random

    direct = suggest_stronger(
        meter, "password", target_bits=10.0, rng=random.Random(0)
    )

    async def main():
        async with running_server(meter) as server:
            status, payload = await one_shot(
                server.port, "POST", "/suggest",
                {"password": "password", "target_bits": 10.0},
            )
            assert status == 200
            assert [s["password"] for s in payload["suggestions"]] == [
                s.password for s in direct
            ]
            assert [s["probability"]
                    for s in payload["suggestions"]] == [
                s.probability for s in direct
            ]

    run(main())


def test_policy_endpoint_named_and_custom(meter):
    async def main():
        async with running_server(meter) as server:
            status, payload = await one_shot(
                server.port, "POST", "/policy",
                {"password": "abc", "policy": "6-20"},
            )
            assert status == 200
            assert payload["allowed"] is False
            assert payload["violations"][0]["rule"] == "min_length"

            status, payload = await one_shot(
                server.port, "POST", "/policy",
                {"password": "longenough1", "policy": {
                    "min_length": 4, "max_length": 32,
                    "required_classes": ["digit"],
                }},
            )
            assert status == 200
            assert payload["allowed"] is True

            status, payload = await one_shot(
                server.port, "POST", "/policy",
                {"password": "x", "policy": "no-such-policy"},
            )
            assert status == 400

    run(main())


def test_healthz_and_metrics_without_workers(meter):
    async def main():
        async with running_server(meter) as server:
            status, payload = await one_shot(
                server.port, "GET", "/healthz"
            )
            assert status == 200
            assert payload["status"] == "healthy"
            assert payload["workers"] == []

            await one_shot(server.port, "POST", "/check",
                           {"password": "qwerty12"})
            status, metrics = await one_shot(
                server.port, "GET", "/metrics"
            )
            assert status == 200
            assert metrics["counters"]["serve.requests"] >= 2
            assert metrics["latency"]["count"] >= 2
            assert metrics["latency"]["p50"] is not None
            assert metrics["batcher"]["max_batch"] == 256

    run(main())


# --- error paths: clean 4xx, never a hung connection --------------------


def test_unknown_route_404_and_wrong_method_405(meter):
    async def main():
        async with running_server(meter) as server:
            status, payload = await one_shot(
                server.port, "POST", "/nope", {"x": 1}
            )
            assert status == 404
            status, payload = await one_shot(
                server.port, "GET", "/check"
            )
            assert status == 405
            # The connection survives routing errors: keep-alive works.
            async with ServeClient(server.port) as client:
                status, _ = await client.request("GET", "/nope")
                assert status == 404
                payload = await client.check("password")
                assert payload["probability"] > 0

    run(main())


@pytest.mark.parametrize("body,field_error", [
    (b"this is not json", "not valid JSON"),
    (b"[1, 2, 3]", "must be a JSON object"),
    (json.dumps({"nope": 1}).encode(), "'password'"),
    (json.dumps({"password": 42}).encode(), "'password'"),
])
def test_bad_check_bodies_get_400(meter, body, field_error):
    async def main():
        async with running_server(meter) as server:
            async with ServeClient(server.port) as client:
                head = (
                    f"POST /check HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                await client.send_raw(head + body)
                status, payload = await client.read_response()
                assert status == 400
                assert field_error in payload["error"]
                # 400s on well-framed requests keep the stream usable.
                payload = await client.check("password")
                assert payload["probability"] > 0

    run(main())


def test_oversized_body_413_then_close(meter):
    async def main():
        config = ServeConfig(max_body=256)
        async with running_server(meter, config) as server:
            async with ServeClient(server.port) as client:
                big = b"x" * 1024
                head = (
                    f"POST /check HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(big)}\r\n\r\n"
                ).encode()
                await client.send_raw(head + big)
                status, payload = await client.read_response()
                assert status == 413
                assert "256" in payload["error"]
                # close=True errors end the connection promptly.
                assert await client._reader.read() == b""

    run(main())


def test_garbage_request_line_400(meter):
    async def main():
        async with running_server(meter) as server:
            async with ServeClient(server.port) as client:
                await client.send_raw(b"NOT A REQUEST\r\n\r\n")
                status, _ = await client.read_response()
                assert status == 400
                assert await client._reader.read() == b""

    run(main())


def test_oversized_header_431(meter):
    async def main():
        async with running_server(meter) as server:
            async with ServeClient(server.port) as client:
                huge = b"X-Pad: " + b"a" * 20_000 + b"\r\n"
                await client.send_raw(
                    b"GET /healthz HTTP/1.1\r\n" + huge + b"\r\n"
                )
                status, _ = await client.read_response()
                assert status == 431

    run(main())


def test_transfer_encoding_501_and_bad_length_400(meter):
    async def main():
        async with running_server(meter) as server:
            async with ServeClient(server.port) as client:
                await client.send_raw(
                    b"POST /check HTTP/1.1\r\nHost: t\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )
                status, _ = await client.read_response()
                assert status == 501
            async with ServeClient(server.port) as client:
                await client.send_raw(
                    b"POST /check HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: banana\r\n\r\n"
                )
                status, _ = await client.read_response()
                assert status == 400

    run(main())


def test_client_vanishing_mid_body_does_not_wedge_server(meter):
    async def main():
        async with running_server(meter) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /check HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 500\r\n\r\n{\"password\":"
            )
            await writer.drain()
            writer.close()
            # The server must still answer other clients immediately.
            status, payload = await one_shot(
                server.port, "GET", "/healthz"
            )
            assert status == 200
            assert reader is not None

    run(main())


# --- ROADMAP item 5 regression: batch scoring uses the frozen kernel ----


def test_server_scores_through_frozen_kernel_batch_path():
    """The serving path is ``probability_many``'s frozen-kernel batch
    default — ``meter.batch.calls`` ticks and the frozen grammar is
    built — never the per-call ``meter.probability`` loop."""
    fresh = train_serve_meter()

    async def main(server):
        async with ServeClient(server.port) as client:
            await asyncio.gather(*[
                client_burst(server.port) for _ in range(4)
            ])
            await client.check("password")

    async def client_burst(port):
        async with ServeClient(port) as client:
            for password in SERVE_PASSWORDS[:6]:
                await client.check(password)

    with obs.session() as telemetry:
        async def wrapped():
            config = ServeConfig(workers=0, batch_window=0.002)
            async with running_server(fresh, config) as server:
                await main(server)
        run(wrapped())
        assert telemetry.counter("meter.batch.calls") >= 1
        assert telemetry.counter("meter.frozen.builds") >= 1
        assert telemetry.counter("meter.probability") == 0

    # And the spawned ReproServer gated by capability, not type.
    assert ReproServer(fresh, ServeConfig(workers=0)) is not None
