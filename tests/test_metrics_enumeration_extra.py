"""Additional unit tests for the lazy enumeration primitives."""

import pytest

from repro.metrics.enumeration import (
    LazyDescendingList,
    deduplicate_guesses,
    descending_products,
    merge_weighted_descending,
)


class TestLazyDescendingList:
    def test_indexing_pulls_on_demand(self):
        pulled = []

        def stream():
            for index in range(5):
                pulled.append(index)
                yield (f"v{index}", 1.0 / (index + 1))

        lazy = LazyDescendingList(stream())
        assert lazy.get(0) == ("v0", 1.0)
        assert pulled == [0]
        assert lazy.get(3)[0] == "v3"
        assert pulled == [0, 1, 2, 3]

    def test_out_of_range_returns_none(self):
        lazy = LazyDescendingList(iter([("a", 1.0)]))
        assert lazy.get(0) == ("a", 1.0)
        assert lazy.get(1) is None
        assert lazy.get(5) is None

    def test_cached_after_exhaustion(self):
        lazy = LazyDescendingList(iter([("a", 1.0), ("b", 0.5)]))
        assert lazy.get(10) is None
        assert lazy.get(1) == ("b", 0.5)

    def test_empty_stream(self):
        lazy = LazyDescendingList(iter(()))
        assert lazy.get(0) is None


class TestDescendingProducts:
    def test_no_factors_yields_unit(self):
        assert list(descending_products([])) == [((), 1.0)]

    def test_single_factor(self):
        factor = [("a", 0.7), ("b", 0.3)]
        assert list(descending_products([factor])) == [
            (("a",), 0.7), (("b",), 0.3)
        ]

    def test_empty_factor_yields_nothing(self):
        assert list(descending_products([[], [("a", 1.0)]])) == []

    def test_lazy_factor_supported(self):
        lazy = LazyDescendingList(iter([("x", 0.8), ("y", 0.2)]))
        fixed = [("1", 0.6), ("2", 0.4)]
        results = list(descending_products([lazy, fixed]))
        assert results[0] == (("x", "1"), pytest.approx(0.48))
        assert len(results) == 4

    def test_every_cell_emitted_once(self):
        a = [("a", 0.5), ("b", 0.3), ("c", 0.2)]
        b = [("1", 0.9), ("2", 0.1)]
        cells = [values for values, _ in descending_products([a, b])]
        assert len(cells) == 6
        assert len(set(cells)) == 6

    def test_validation_catches_unsorted(self):
        with pytest.raises(ValueError):
            list(descending_products(
                [[("a", 0.3), ("b", 0.7)]], validate=True
            ))

    def test_validation_catches_negative(self):
        with pytest.raises(ValueError):
            list(descending_products(
                [[("a", -0.1)]], validate=True
            ))

    def test_validation_catches_empty(self):
        with pytest.raises(ValueError):
            list(descending_products([[]], validate=True))

    def test_ties_are_deterministic(self):
        a = [("a", 0.5), ("b", 0.5)]
        b = [("1", 0.5), ("2", 0.5)]
        first = list(descending_products([a, b]))
        second = list(descending_products([a, b]))
        assert first == second


class TestMergeWeightedDescending:
    def test_zero_weight_streams_skipped(self):
        exploding = iter([])  # would raise if touched after skip
        merged = merge_weighted_descending(
            [(0.0, exploding), (1.0, iter([("a", 0.5)]))]
        )
        assert list(merged) == [("a", 0.5)]

    def test_empty_streams_skipped(self):
        merged = merge_weighted_descending(
            [(1.0, iter([])), (1.0, iter([("a", 0.5)]))]
        )
        assert list(merged) == [("a", 0.5)]

    def test_no_streams(self):
        assert list(merge_weighted_descending([])) == []

    def test_interleaving(self):
        a = iter([("a1", 0.9), ("a2", 0.2)])
        b = iter([("b1", 0.5), ("b2", 0.4)])
        merged = list(merge_weighted_descending([(1.0, a), (1.0, b)]))
        assert [item for item, _ in merged] == ["a1", "b1", "b2", "a2"]

    def test_weights_scale(self):
        a = iter([("a", 1.0)])
        b = iter([("b", 1.0)])
        merged = list(merge_weighted_descending([(0.2, a), (0.8, b)]))
        assert merged == [("b", 0.8), ("a", pytest.approx(0.2))]

    def test_equal_probabilities_keep_insertion_order(self):
        a = iter([("a", 0.5)])
        b = iter([("b", 0.5)])
        merged = list(merge_weighted_descending([(1.0, a), (1.0, b)]))
        assert [item for item, _ in merged] == ["a", "b"]


class TestDeduplicateGuesses:
    def test_first_kept(self):
        stream = iter([("x", 0.9), ("x", 0.1), ("y", 0.5)])
        assert list(deduplicate_guesses(stream)) == [
            ("x", 0.9), ("y", 0.5)
        ]

    def test_custom_key(self):
        stream = iter([("Abc", 0.9), ("abc", 0.5)])
        deduped = deduplicate_guesses(stream, key=str.lower)
        assert list(deduped) == [("Abc", 0.9)]

    def test_empty(self):
        assert list(deduplicate_guesses(iter([]))) == []
