"""Unit tests for the traditional PCFG meter (Weir'09 / Ma'14)."""

import random

import pytest

from repro.meters.pcfg import PCFGMeter, password_slots, structure_string
from repro.util.charclasses import CharClass


class TestSlots:
    def test_slots_of_mixed_password(self):
        slots = password_slots("password123")
        assert slots == ((CharClass.LETTER, 8), (CharClass.DIGIT, 3))

    def test_structure_string(self):
        assert structure_string(password_slots("p@ssw0rd")) == (
            "L1S1L3D1L2"
        )


class TestTrainingAndMeasuring:
    def test_probability_factorisation(self):
        meter = PCFGMeter.train(["abc12", "abd12", "xy9"])
        # P(L3D2)=2/3; P(abc|L3)=1/2; P(12|D2)=1.
        assert meter.probability("abc12") == pytest.approx(
            (2 / 3) * (1 / 2) * 1.0
        )

    def test_cross_product_generalisation(self):
        # PCFG's independence assumption scores recombinations > 0.
        meter = PCFGMeter.train(["abc12", "abd34"])
        assert meter.probability("abc34") > 0
        assert meter.probability("abd12") > 0

    def test_unseen_structure_zero(self):
        meter = PCFGMeter.train(["abc123"])
        assert meter.probability("abc123!") == 0.0

    def test_unseen_segment_zero(self):
        meter = PCFGMeter.train(["abc123"])
        assert meter.probability("xyz123") == 0.0

    def test_empty_password(self):
        meter = PCFGMeter.train(["abc"])
        assert meter.probability("") == 0.0

    def test_counts_respected(self):
        meter = PCFGMeter.train([("abc", 9), ("xyz", 1)])
        assert meter.probability("abc") > meter.probability("xyz")

    def test_observe_empty_rejected(self):
        with pytest.raises(ValueError):
            PCFGMeter().observe("")

    def test_case_preserved_in_segments(self):
        # Ma'14-style learning: letter segments learned verbatim.
        meter = PCFGMeter.train(["Password1"])
        assert meter.probability("Password1") > 0
        assert meter.probability("password1") == 0.0

    def test_single_structure_fraction(self):
        meter = PCFGMeter.train(["abcdef", "123456", "abc123"])
        assert meter.single_simple_structure_fraction() == pytest.approx(
            2 / 3
        )


class TestCrackingInterface:
    def test_guesses_descending_and_unique(self):
        meter = PCFGMeter.train(
            ["abc12", "abc34", "abd12", "zz99", "hello", "hello"]
        )
        guesses = list(meter.iter_guesses(limit=50))
        probs = [p for _, p in guesses]
        assert probs == sorted(probs, reverse=True)
        strings = [g for g, _ in guesses]
        assert len(strings) == len(set(strings))

    def test_guess_probabilities_match_measure(self):
        meter = PCFGMeter.train(["abc12", "abc34", "abd12", "hello"])
        for guess, probability in meter.iter_guesses(limit=20):
            assert meter.probability(guess) == pytest.approx(probability)

    def test_guesses_include_recombinations(self):
        meter = PCFGMeter.train(["abc12", "abd34"])
        guesses = {g for g, _ in meter.iter_guesses(limit=20)}
        assert "abc34" in guesses

    def test_untrained_yields_nothing(self):
        assert list(PCFGMeter().iter_guesses(limit=5)) == []

    def test_sample_matches_measure(self):
        meter = PCFGMeter.train(["abc12", "abd12", "xy9", "hello1"])
        rng = random.Random(0)
        for _ in range(50):
            password, probability = meter.sample(rng)
            assert meter.probability(password) == pytest.approx(probability)

    def test_sample_untrained_raises(self):
        with pytest.raises(ValueError):
            PCFGMeter().sample(random.Random(0))
