"""Unit tests for the survey aggregates and analysis (Sec. III)."""

import random

import pytest

from repro.survey import analysis, data
from repro.survey.data import BehaviorModel


class TestPublishedNumbers:
    def test_reuse_or_modify_rate(self):
        # The paper's headline: 77.38% reuse or modify.
        assert analysis.figure2_reuse_rate() == pytest.approx(0.7738)

    def test_new_password_rate(self):
        assert data.CREATION_STRATEGY[
            "create an entirely new password"
        ] == pytest.approx(0.1448)

    def test_creation_strategy_sums_to_one(self):
        assert sum(data.CREATION_STRATEGY.values()) == pytest.approx(1.0)

    def test_similarity_at_least_similar(self):
        # Paper: "over 80% ... similar to their existing passwords".
        assert analysis.figure3_similar_or_closer_rate() >= 0.80

    def test_top_modify_reason_is_security(self):
        reason, fraction = analysis.figure4_top_reason()
        assert reason == "increase security"
        assert fraction == pytest.approx(0.51)

    def test_policy_and_memorability_rates(self):
        assert data.MODIFY_REASONS[
            "fulfill password policies"
        ] == pytest.approx(0.4276)
        assert data.MODIFY_REASONS[
            "improve memorability"
        ] == pytest.approx(0.3258)

    def test_top_rule_is_concatenation(self):
        rule, _ = analysis.figure5_top_rule()
        assert rule.startswith("concatenation")

    def test_digit_placement_order(self):
        # Paper: end, middle, beginning in decreasing likelihood.
        assert analysis.figure6_placement_order() == [
            "end", "middle", "beginning"
        ]

    def test_capitalize_first_rate(self):
        assert analysis.figure8_capitalize_first_rate() == pytest.approx(
            0.4796
        )

    def test_never_capitalize_rate(self):
        assert data.CAPITALIZATION_PLACEMENT[
            "never use capitalization"
        ] == pytest.approx(0.2262)

    def test_survey_bookkeeping(self):
        assert data.INVITATIONS_SENT == 983
        assert data.EFFECTIVE_RESPONSES == 442


class TestDasComparison:
    def test_both_surveys_agree_on_reuse(self):
        comparison = analysis.compare_with_das()
        assert comparison["reuse_or_modify_chinese"] == pytest.approx(
            0.7738
        )
        assert comparison["reuse_or_modify_english"] == pytest.approx(
            0.77, abs=0.005
        )

    def test_direct_reuse_gap(self):
        # Paper: 6.2 points fewer Chinese users reuse directly.
        comparison = analysis.compare_with_das()
        assert comparison["direct_reuse_gap"] == pytest.approx(
            -0.062, abs=0.001
        )

    def test_new_password_gap(self):
        # Paper: 14.86 points more English users create new passwords.
        comparison = analysis.compare_with_das()
        assert comparison["new_password_gap"] == pytest.approx(
            0.1486, abs=0.001
        )


class TestSurveyReport:
    def test_report_lines(self):
        lines = analysis.survey_report()
        assert any("77.38%" in line for line in lines)
        assert any("end > middle > beginning" in line for line in lines)


class TestBehaviorModel:
    @pytest.fixture()
    def model(self):
        return BehaviorModel()

    def test_action_probabilities_match_survey(self, model):
        assert model.modify == pytest.approx(0.4058)
        assert model.new == pytest.approx(0.1448)
        # Residual "other" folded into reuse.
        assert model.reuse + model.modify + model.new == pytest.approx(1.0)

    def test_choose_action_distribution(self, model):
        rng = random.Random(0)
        draws = [model.choose_action(rng) for _ in range(20_000)]
        reuse = draws.count("reuse") / len(draws)
        modify = draws.count("modify") / len(draws)
        new = draws.count("new") / len(draws)
        assert reuse == pytest.approx(model.reuse, abs=0.02)
        assert modify == pytest.approx(model.modify, abs=0.02)
        assert new == pytest.approx(model.new, abs=0.02)

    def test_choose_rule_concatenation_leads(self, model):
        rng = random.Random(0)
        draws = [model.choose_rule(rng) for _ in range(20_000)]
        counts = {rule: draws.count(rule) for rule in set(draws)}
        assert max(counts, key=counts.get) == "concatenate_digits"

    def test_choose_placement_end_leads(self, model):
        rng = random.Random(0)
        draws = [model.choose_placement(rng) for _ in range(20_000)]
        counts = {place: draws.count(place) for place in set(draws)}
        assert max(counts, key=counts.get) == "end"

    def test_all_rules_reachable(self, model):
        rng = random.Random(0)
        drawn = {model.choose_rule(rng) for _ in range(20_000)}
        expected = {rule for rule, _ in model.rule_weights}
        assert drawn == expected
