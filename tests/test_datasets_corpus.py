"""Unit tests for the PasswordCorpus container."""

import random

import pytest

from repro.datasets.corpus import PasswordCorpus


@pytest.fixture()
def corpus():
    return PasswordCorpus(
        ["123456"] * 5 + ["password"] * 3 + ["dragon"] * 2,
        name="toy", service="forum", location="USA", language="English",
    )


class TestConstruction:
    def test_from_iterable(self, corpus):
        assert corpus.total == 10
        assert corpus.unique == 3

    def test_from_mapping(self):
        corpus = PasswordCorpus({"a": 2, "b": 1}, name="m")
        assert corpus.total == 3
        assert corpus.unique == 2
        assert corpus.count("a") == 2

    def test_metadata(self, corpus):
        assert corpus.name == "toy"
        assert corpus.service == "forum"
        assert corpus.location == "USA"
        assert corpus.language == "English"

    def test_empty_corpus(self):
        corpus = PasswordCorpus([])
        assert corpus.total == 0
        assert corpus.unique == 0


class TestQueries:
    def test_count_and_frequency(self, corpus):
        assert corpus.count("123456") == 5
        assert corpus.frequency("123456") == pytest.approx(0.5)
        assert corpus.count("missing") == 0
        assert corpus.frequency("missing") == 0.0

    def test_contains(self, corpus):
        assert "password" in corpus
        assert "missing" not in corpus

    def test_len_is_unique(self, corpus):
        assert len(corpus) == 3

    def test_iter_distinct(self, corpus):
        assert sorted(corpus) == ["123456", "dragon", "password"]

    def test_most_common_order(self, corpus):
        assert [pw for pw, _ in corpus.most_common()] == [
            "123456", "password", "dragon"
        ]
        assert corpus.most_common(1) == [("123456", 5)]

    def test_counts_returns_fresh_dict(self, corpus):
        counts = corpus.counts()
        counts["123456"] = 0
        assert corpus.count("123456") == 5

    def test_expand_multiplicity(self, corpus):
        expanded = list(corpus.expand())
        assert len(expanded) == 10
        assert expanded.count("dragon") == 2

    def test_items(self, corpus):
        assert dict(corpus.items()) == {
            "123456": 5, "password": 3, "dragon": 2
        }


class TestSplit:
    def test_split_preserves_total(self, corpus):
        parts = corpus.split([0.5, 0.5], random.Random(1))
        assert sum(part.total for part in parts) == corpus.total

    def test_split_quarters(self):
        corpus = PasswordCorpus([str(i) for i in range(100)])
        parts = corpus.split([0.25, 0.25, 0.25, 0.25], random.Random(1))
        assert [part.total for part in parts] == [25, 25, 25, 25]

    def test_split_deterministic_given_rng(self, corpus):
        first = corpus.split([0.5, 0.5], random.Random(42))
        second = corpus.split([0.5, 0.5], random.Random(42))
        assert first[0].counts() == second[0].counts()

    def test_split_metadata_inherited(self, corpus):
        part = corpus.split([0.5, 0.5], random.Random(1))[0]
        assert part.language == "English"
        assert "toy" in part.name

    def test_split_validation(self, corpus):
        with pytest.raises(ValueError):
            corpus.split([])
        with pytest.raises(ValueError):
            corpus.split([0.5, -0.5, 1.0])
        with pytest.raises(ValueError):
            corpus.split([0.3, 0.3])


class TestMerge:
    def test_merged_with_adds_counts(self, corpus):
        other = PasswordCorpus({"123456": 1, "new": 4}, name="other")
        merged = corpus.merged_with(other)
        assert merged.count("123456") == 6
        assert merged.count("new") == 4
        assert merged.total == corpus.total + other.total

    def test_merged_name(self, corpus):
        other = PasswordCorpus(["x"], name="other")
        assert corpus.merged_with(other).name == "toy+other"
        assert corpus.merged_with(other, name="combo").name == "combo"

    def test_merge_does_not_mutate_operands(self, corpus):
        other = PasswordCorpus({"123456": 1}, name="other")
        corpus.merged_with(other)
        assert corpus.count("123456") == 5
        assert other.count("123456") == 1
