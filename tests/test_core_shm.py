"""Tests for the shared-memory snapshot plane (repro.core.shm).

Covers the segment codec round-trip, ownership/lifetime rules, the
per-process attach cache, the repo-wide start-method policy, and — the
load-bearing guarantee — score differentials: a reader attached to a
published segment must score **bit-identically** to the publishing
meter, in-process and across fork/spawn pool workers alike, including
after an epoch hot-swap.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.meter import FuzzyPSM
from repro.core import shm as shm_module
from repro.core.shm import (
    SEGMENT_PREFIX,
    START_METHOD_ENV,
    SharedScoringSegment,
    _worker_attach_state,
    mp_context,
)

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS

#: Start methods the platform offers; the differential suites run once
#: per entry so the spawn CI legs and fork dev boxes cover the same
#: assertions.
START_METHODS = [
    method for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]

#: Inputs spanning the interesting parse paths: base words, composites,
#: leet, capitalization, digits, unseen strings, unicode, empty.
PROBE_PASSWORDS = [
    "password", "password123", "Password123", "p@ssw0rd", "PASSWORD",
    "123456", "123qwe123qwe", "iloveyou1", "woaini520", "qwerty12",
    "monkey99", "letmein!", "totally-novel-string", "Zx9#kk",
    "pässword", "ab", "",
]


def _train() -> FuzzyPSM:
    """A private meter — segment/update tests must not mutate fixtures."""
    return FuzzyPSM.train(list(BASE_DICTIONARY), list(TRAINING_PASSWORDS))


def _segment_files() -> set:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX)
    }


class TestMpContext:
    def test_default_prefers_fork_where_available(self, monkeypatch):
        monkeypatch.delenv(START_METHOD_ENV, raising=False)
        context = mp_context()
        available = multiprocessing.get_all_start_methods()
        expected = "fork" if "fork" in available else available[0]
        assert context.get_start_method() == expected

    def test_env_var_selects_method(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        assert mp_context().get_start_method() == "spawn"

    def test_explicit_method_beats_env(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        available = multiprocessing.get_all_start_methods()
        assert mp_context(available[0]).get_start_method() == available[0]

    def test_unknown_method_is_an_error(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "threads")
        with pytest.raises(ValueError, match="threads"):
            mp_context()


class TestSegmentRoundTrip:
    def test_materialized_state_scores_bit_identically(self):
        meter = _train()
        segment = meter.shared_segment()
        reader = SharedScoringSegment.attach(segment.name)
        try:
            state = reader.materialize()
            assert state.epoch == meter.grammar.epoch
            parser = state.build_parser()
            frozen = state.frozen
            assert frozen is not None
            for password in PROBE_PASSWORDS:
                if not password:
                    continue
                expected = meter.probability(password)
                derivation = parser.parse(password).to_derivation()
                assert frozen.derivation_probability(
                    derivation
                ) == expected
        finally:
            reader.close()

    def test_segment_is_cached_per_epoch_and_named(self):
        meter = _train()
        segment = meter.shared_segment()
        assert segment.name.startswith(SEGMENT_PREFIX)
        assert segment.owner_pid == os.getpid()
        assert segment.size >= 8
        assert meter.shared_segment() is segment  # epoch unchanged

    def test_update_publishes_new_epoch_and_unlinks_old(self):
        meter = _train()
        old = meter.shared_segment()
        meter.update("zebra42!", 50)
        new = meter.shared_segment()
        assert new is not old
        assert new.epoch == old.epoch + 1
        # The retired name is gone: late attachers fail fast.
        with pytest.raises(FileNotFoundError):
            SharedScoringSegment.attach(old.name)
        new.unlink()

    def test_trie_only_segment_has_no_grammar(self):
        meter = _train()
        forward, reversed_matcher = (
            meter._parser.ensure_compiled_matchers()
        )
        segment = SharedScoringSegment.create(
            epoch=0,
            forward=forward,
            min_length=meter.trie.min_length,
            flags=meter._parser.flags,
            parse_cache_size=256,
            reversed_matcher=reversed_matcher,
        )
        try:
            state = segment.materialize()
            assert state.frozen is None
            assert state.forward is not None
            # Parsing still works — training workers only parse.
            parsed = state.build_parser().parse("password123")
            assert parsed.to_derivation() == meter.parse(
                "password123"
            ).to_derivation()
        finally:
            segment.unlink()


class TestLifetime:
    def test_unlink_removes_dev_shm_entry(self):
        meter = _train()
        segment = meter.shared_segment()
        if os.path.isdir("/dev/shm"):
            assert segment.name in _segment_files()
        meter._shared_segment = None  # drop the meter's cache
        segment.unlink()
        assert segment.name not in _segment_files()
        assert segment.name not in shm_module._OWNED

    def test_unlink_and_close_are_idempotent(self):
        meter = _train()
        segment = meter.shared_segment()
        meter._shared_segment = None
        segment.unlink()
        segment.unlink()
        segment.close()

    def test_attached_mapping_survives_owner_unlink(self):
        meter = _train()
        segment = meter.shared_segment()
        reader = SharedScoringSegment.attach(segment.name)
        state = reader.materialize()
        meter._shared_segment = None
        segment.unlink()
        # The name is gone but the existing mapping stays valid.
        assert state.build_parser().parse("password").to_derivation() \
            == meter.parse("password").to_derivation()
        del state
        reader.close()

    def test_create_registers_ownership(self):
        meter = _train()
        segment = meter.shared_segment()
        assert shm_module._OWNED.get(segment.name) is segment
        meter._shared_segment = None
        segment.unlink()


class TestAttachCache:
    def test_same_name_reuses_the_cached_state(self):
        meter = _train()
        segment = meter.shared_segment()
        first = _worker_attach_state(segment.name)
        second = _worker_attach_state(segment.name)
        assert second is first

    def test_new_name_swaps_the_cache(self):
        meter = _train()
        old_state = _worker_attach_state(meter.shared_segment().name)
        meter.update("zebra42!", 50)
        new_segment = meter.shared_segment()
        new_state = _worker_attach_state(new_segment.name)
        assert new_state is not old_state
        assert new_state.epoch == old_state.epoch + 1
        cached = shm_module._ATTACH_CACHE
        assert cached is not None and cached[0] == new_segment.name


class TestScoreDifferential:
    """Published segment == publishing meter, bit for bit."""

    @given(st.lists(
        st.sampled_from(PROBE_PASSWORDS), min_size=1, max_size=12,
    ))
    @settings(max_examples=25, deadline=None)
    def test_in_process_attachment_matches_meter(self, stream):
        meter = getattr(self, "_meter", None)
        if meter is None:
            meter = self._meter = _train()
        state = _worker_attach_state(meter.shared_segment().name)
        parser = state.build_parser()
        frozen = state.frozen
        for password in stream:
            expected = meter.probability(password)
            if not password:
                assert expected == 0.0
                continue
            derivation = parser.parse_cached(password).to_derivation()
            assert frozen.derivation_probability(
                derivation
            ) == expected

    @pytest.mark.parametrize("method", START_METHODS)
    def test_pool_scores_match_serial_including_hot_swap(
        self, method, monkeypatch
    ):
        monkeypatch.setenv(START_METHOD_ENV, method)
        meter = _train()
        stream = PROBE_PASSWORDS * 3
        serial = meter.probability_many(stream)
        parallel = meter.probability_many(
            stream, jobs=2, parallel_threshold=1
        )
        assert parallel == serial
        # Epoch hot-swap: the update republishes; a fresh pool attaches
        # the new segment and must match the updated meter exactly.
        meter.update("zebra42!", 50)
        swapped_serial = meter.probability_many(stream)
        assert swapped_serial != serial
        swapped_parallel = meter.probability_many(
            stream, jobs=2, parallel_threshold=1
        )
        assert swapped_parallel == swapped_serial
        meter.shared_segment().unlink()
        meter._shared_segment = None
