"""End-to-end integration tests across subsystem boundaries.

These tests exercise the full paper pipeline on one small shared
setup: synthesise corpora -> train all six meters -> evaluate with
rank-correlation curves, guess enumeration, Monte-Carlo guess numbers
and un-usable-guess counts.
"""

import math
import random

import pytest

from repro import (
    FuzzyPSM,
    IdealMeter,
    MarkovMeter,
    MonteCarloEstimator,
    PCFGMeter,
    PasswordCorpus,
    SyntheticEcosystem,
    kendall_tau,
)
from repro.metrics.guessnumber import guess_numbers_by_enumeration
from repro.metrics.unusable import count_unusable_guesses


@pytest.fixture(scope="module")
def ecosystem():
    return SyntheticEcosystem(seed=21, population=10_000)


@pytest.fixture(scope="module")
def splits(ecosystem):
    corpus = ecosystem.generate("csdn", total=8_000)
    train, _, _, test = corpus.split(
        [0.25, 0.25, 0.25, 0.25], random.Random(3)
    )
    return train, test


@pytest.fixture(scope="module")
def base_corpus(ecosystem):
    return ecosystem.generate("tianya", total=30_000)


@pytest.fixture(scope="module")
def fuzzy(base_corpus, splits):
    train, _ = splits
    return FuzzyPSM.train(
        base_dictionary=base_corpus.unique_passwords(),
        training=list(train.items()),
    )


@pytest.fixture(scope="module")
def pcfg(splits):
    train, _ = splits
    return PCFGMeter.train(train.items())


@pytest.fixture(scope="module")
def markov(splits):
    train, _ = splits
    return MarkovMeter.train(train.items(), order=3)


class TestCrossModelConsistency:
    def test_all_models_measure_training_head(self, splits, fuzzy, pcfg,
                                              markov):
        train, _ = splits
        head = [pw for pw, _ in train.most_common(5)]
        for meter in (fuzzy, pcfg, markov):
            for password in head:
                assert meter.probability(password) > 0.0, (
                    meter.name, password
                )

    def test_popular_passwords_rank_high_everywhere(self, splits, fuzzy,
                                                    pcfg, markov):
        train, _ = splits
        top, _ = train.most_common(1)[0]
        rare = next(
            pw for pw, count in train.most_common() if count == 1
        )
        for meter in (fuzzy, pcfg, markov):
            assert meter.probability(top) > meter.probability(rare)


class TestGuessStreams:
    def test_enumeration_finds_popular_passwords(self, splits, fuzzy):
        train, test = splits
        targets = [pw for pw, _ in test.most_common(3)]
        results = guess_numbers_by_enumeration(
            fuzzy.iter_guesses(), targets, limit=20_000
        )
        found = [pw for pw, rank in results.items() if rank is not None]
        assert len(found) >= 2

    def test_unusable_guesses_grow_with_horizon(self, splits, fuzzy):
        _, test = splits
        counts = count_unusable_guesses(
            fuzzy.iter_guesses(), test.unique_passwords(),
            checkpoints=[100, 1_000, 5_000],
        )
        assert counts[100] <= counts[1_000] <= counts[5_000]

    def test_pcfg_vs_markov_unusable_ordering(self, splits, pcfg, markov):
        """Table III's shape: PCFG wastes fewer early guesses."""
        _, test = splits
        test_passwords = test.unique_passwords()
        pcfg_counts = count_unusable_guesses(
            pcfg.iter_guesses(), test_passwords, checkpoints=[100]
        )
        markov_counts = count_unusable_guesses(
            markov.iter_guesses(), test_passwords, checkpoints=[100]
        )
        assert pcfg_counts[100] <= markov_counts[100] + 10


class TestMonteCarloAgainstEnumeration:
    def test_estimates_match_exact_ranks(self, fuzzy):
        estimator = MonteCarloEstimator(
            fuzzy, sample_size=8_000, rng=random.Random(5)
        )
        exact = list(fuzzy.iter_guesses(limit=200))
        for rank, (password, probability) in enumerate(exact, start=1):
            if rank in (1, 10, 100):
                estimate = estimator.guess_number(probability)
                assert estimate == pytest.approx(rank, rel=1.0, abs=15), (
                    password, rank, estimate
                )

    def test_underivable_password_infinite(self, fuzzy):
        estimator = MonteCarloEstimator(
            fuzzy, sample_size=1_000, rng=random.Random(5)
        )
        assert estimator.guess_number(0.0) == math.inf


class TestIdealMeterAgreement:
    def test_meters_correlate_positively_with_ideal(self, splits, fuzzy,
                                                    pcfg, markov):
        _, test = splits
        ideal = IdealMeter(test.counts())
        passwords = [pw for pw, c in test.most_common() if c >= 2]
        ideal_scores = [ideal.probability(pw) for pw in passwords]
        for meter in (fuzzy, pcfg, markov):
            scores = [meter.probability(pw) for pw in passwords]
            assert kendall_tau(ideal_scores, scores) > 0.1, meter.name


class TestAdaptiveUpdate:
    def test_update_phase_tracks_new_trend(self, base_corpus, splits):
        train, _ = splits
        meter = FuzzyPSM.train(
            base_dictionary=base_corpus.unique_passwords(),
            training=list(train.items()),
        )
        trend = "brandnewfad2026"
        before = meter.probability(trend)
        for _ in range(50):
            meter.accept(trend)
        after = meter.probability(trend)
        assert after > before
        assert after > 0.0
