"""The small-corpus serial fallback of ``train_grammar(..., jobs=N)``.

Regression guard for a measured footgun: worker startup rebuilds (and
recompiles) the base trie in every pool process, so for small corpora
``jobs=2`` was ~7x *slower* than serial (BENCH_timing.json,
``training_serial_vs_jobs2`` at 5k passwords).  Below
``PARALLEL_MIN_ENTRIES`` the trainer must therefore choose the serial
path on its own, without the caller having to know the tradeoff.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import training
from repro.core.grammar import FuzzyGrammar
from repro.core.meter import FuzzyPSM
from repro.core.training import (
    PARALLEL_MIN_ENTRIES,
    build_base_trie,
    train_grammar,
)

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS


@pytest.fixture()
def trie():
    return build_base_trie(BASE_DICTIONARY)


@pytest.fixture()
def multicore(monkeypatch):
    """Pretend the host has two cores so the CPU clamp stays out of
    the way (tests below that *want* the pool must not silently fall
    back on a single-core CI machine)."""
    monkeypatch.setattr(training, "_available_cpus", lambda: 2)


@pytest.fixture()
def pool_spy(monkeypatch):
    """Count ``_train_grammar_parallel`` invocations, still delegating."""
    calls = []
    original = training._train_grammar_parallel

    def spy(entries, parser, jobs):
        calls.append(len(entries))
        return original(entries, parser, jobs)

    monkeypatch.setattr(training, "_train_grammar_parallel", spy)
    return calls


class TestFallbackChosen:
    def test_small_corpus_trains_serially(self, trie, pool_spy):
        train_grammar(TRAINING_PASSWORDS, trie, jobs=2)
        assert pool_spy == []

    def test_small_corpus_never_starts_a_pool(self, trie, monkeypatch):
        def boom(*_args, **_kwargs):
            raise AssertionError("pool started for a small corpus")

        monkeypatch.setattr(training, "_train_grammar_parallel", boom)
        train_grammar(TRAINING_PASSWORDS, trie, jobs=2)

    def test_fallback_is_observable(self, trie):
        with obs.session() as telemetry:
            train_grammar(TRAINING_PASSWORDS, trie, jobs=2)
            counters = telemetry.snapshot()["counters"]
        assert counters["train.fallback.serial"] == 1
        assert "train.parallel" not in counters

    def test_meter_train_inherits_the_fallback(self, pool_spy):
        with obs.session() as telemetry:
            FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS, jobs=2)
            counters = telemetry.snapshot()["counters"]
        assert pool_spy == []
        assert counters["train.fallback.serial"] == 1


class TestFallbackResult:
    def test_fallback_grammar_equals_serial(self, trie):
        entries = TRAINING_PASSWORDS + [("password1", 7), ("Dragon!", 3)]
        assert (
            train_grammar(entries, trie, jobs=2)
            == train_grammar(entries, trie)
        )

    def test_fallback_still_skips_empty_passwords(self, trie):
        entries = ["", "password1", ""]
        assert (
            train_grammar(entries, trie, jobs=2)
            == train_grammar(entries, trie)
        )

    def test_fallback_still_raises_without_skip_empty(self, trie):
        with pytest.raises(ValueError, match="empty"):
            train_grammar(["password1", ""], trie, jobs=2,
                          skip_empty=False)


class TestThreshold:
    def test_pool_runs_at_or_above_threshold(self, trie, pool_spy,
                                             multicore):
        train_grammar(TRAINING_PASSWORDS, trie, jobs=2,
                      parallel_threshold=len(TRAINING_PASSWORDS))
        assert pool_spy == [len(TRAINING_PASSWORDS)]

    def test_override_forces_fallback(self, trie, pool_spy, multicore):
        train_grammar(TRAINING_PASSWORDS, trie, jobs=2,
                      parallel_threshold=len(TRAINING_PASSWORDS) + 1)
        assert pool_spy == []

    def test_module_cutoff_is_patchable(self, trie, pool_spy,
                                        multicore, monkeypatch):
        # The default is read at call time, so test suites (and tuning
        # forks) can lower it without threading a parameter through.
        monkeypatch.setattr(training, "PARALLEL_MIN_ENTRIES", 1)
        train_grammar(TRAINING_PASSWORDS, trie, jobs=2)
        assert pool_spy == [len(TRAINING_PASSWORDS)]

    def test_default_cutoff_clears_the_measured_regression(self):
        # BENCH_timing.json measured jobs=2 at ~7x slower than serial
        # for a 5k corpus; the shipped cutoff must sit well above that.
        assert PARALLEL_MIN_ENTRIES >= 20_000

    def test_threshold_ignored_on_serial_paths(self, trie, pool_spy):
        expected = train_grammar(TRAINING_PASSWORDS, trie)
        actual = train_grammar(TRAINING_PASSWORDS, trie, jobs=1,
                               parallel_threshold=0)
        assert actual == expected
        assert pool_spy == []

    def test_empty_corpus_with_zero_threshold(self, trie, multicore):
        # len([]) < 0 is False, so a zero threshold reaches the pool
        # helper, which must short-circuit before spawning workers.
        assert (
            train_grammar([], trie, jobs=2, parallel_threshold=0)
            == FuzzyGrammar()
        )


class TestCpuClamp:
    """``jobs`` beyond the core count degrade to serial, observably."""

    def test_single_core_host_never_pools(self, trie, pool_spy,
                                          monkeypatch):
        monkeypatch.setattr(training, "_available_cpus", lambda: 1)
        with obs.session() as telemetry:
            grammar = train_grammar(
                TRAINING_PASSWORDS, trie, jobs=4, parallel_threshold=0
            )
            counters = telemetry.snapshot()["counters"]
        assert pool_spy == []
        assert counters["train.fallback.serial"] == 1
        assert counters["training.parallel.fallback"] == 1
        assert grammar == train_grammar(TRAINING_PASSWORDS, trie)

    def test_jobs_clamped_to_core_count(self, trie, monkeypatch):
        monkeypatch.setattr(training, "_available_cpus", lambda: 2)
        seen = []
        original = training._train_grammar_parallel

        def spy(entries, parser, jobs):
            seen.append(jobs)
            return original(entries, parser, jobs)

        monkeypatch.setattr(training, "_train_grammar_parallel", spy)
        train_grammar(TRAINING_PASSWORDS, trie, jobs=8,
                      parallel_threshold=0)
        assert seen == [2]

    def test_streaming_single_core_falls_back(self, trie, monkeypatch):
        monkeypatch.setattr(training, "_available_cpus", lambda: 1)

        def boom(*_args, **_kwargs):
            raise AssertionError("pool started on a single-core host")

        monkeypatch.setattr(training, "_train_streaming_parallel", boom)
        with obs.session() as telemetry:
            grammar = training.train_grammar_streaming(
                iter([TRAINING_PASSWORDS]), trie,
                jobs=2, parallel_threshold=0,
            )
            counters = telemetry.snapshot()["counters"]
        assert counters["training.parallel.fallback"] == 1
        assert grammar == train_grammar(TRAINING_PASSWORDS, trie)
