"""Unit tests for Spearman rho and Kendall tau-b (validated vs scipy)."""

import random

import pytest
import scipy.stats

from repro.metrics.rank import kendall_tau, rankdata, spearman_rho


class TestRankdata:
    def test_no_ties(self):
        assert rankdata([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_average_ranks_for_ties(self):
        assert rankdata([10, 20, 20, 30]) == [1.0, 2.5, 2.5, 4.0]

    def test_all_tied(self):
        assert rankdata([5, 5, 5]) == [2.0, 2.0, 2.0]

    def test_matches_scipy(self):
        rng = random.Random(1)
        values = [rng.randrange(10) for _ in range(200)]
        ours = rankdata(values)
        theirs = scipy.stats.rankdata(values)
        assert ours == pytest.approx(list(theirs))


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_vector_is_zero(self):
        assert spearman_rho([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rho([1], [1, 2])

    def test_too_short(self):
        with pytest.raises(ValueError):
            spearman_rho([1], [2])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scipy_with_ties(self, seed):
        rng = random.Random(seed)
        n = 300
        x = [rng.randrange(20) for _ in range(n)]
        y = [xi + rng.randrange(10) for xi in x]
        expected = scipy.stats.spearmanr(x, y).statistic
        assert spearman_rho(x, y) == pytest.approx(expected, abs=1e-10)


class TestKendall:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_single_swap(self):
        assert kendall_tau([1, 2, 3, 4], [1, 3, 2, 4]) == pytest.approx(
            2 / 3
        )

    def test_constant_vector_is_zero(self):
        assert kendall_tau([7, 7, 7], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_scipy_with_ties(self, seed):
        rng = random.Random(seed)
        n = 250
        x = [rng.randrange(15) for _ in range(n)]
        y = [rng.randrange(15) for _ in range(n)]
        expected = scipy.stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(expected, abs=1e-10)

    def test_matches_scipy_continuous(self):
        rng = random.Random(9)
        x = [rng.random() for _ in range(400)]
        y = [xi + rng.random() * 0.3 for xi in x]
        expected = scipy.stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(expected, abs=1e-10)
