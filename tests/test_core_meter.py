"""Unit tests for FuzzyPSM: train / measure / update / guesses."""

import math
import random

import pytest

from repro.core import FuzzyPSM, FuzzyPSMConfig
from repro.core.training import build_base_trie, train_grammar


class TestTraining:
    def test_trained_meter_measures_training_password(self, fuzzy_meter):
        assert fuzzy_meter.probability("password123") > 0

    def test_base_trie_lowercased_and_filtered(self):
        trie = build_base_trie(["PassWord", "ab", "XYZ"])
        assert "password" in trie
        assert "xyz" in trie
        assert "ab" not in trie

    def test_training_with_counts(self, base_dictionary):
        meter = FuzzyPSM.train(
            base_dictionary, [("password", 9), ("dragon", 1)]
        )
        assert meter.probability("password") > meter.probability("dragon")

    def test_empty_training_passwords_skipped(self, base_dictionary):
        meter = FuzzyPSM.train(base_dictionary, ["password", ""])
        assert meter.grammar.total_passwords == 1

    def test_train_grammar_rejects_empty_when_strict(self, base_dictionary):
        trie = build_base_trie(base_dictionary)
        with pytest.raises(ValueError):
            train_grammar([""], trie, skip_empty=False)


class TestMeasuring:
    def test_weaker_passwords_score_higher(self, fuzzy_meter):
        assert (
            fuzzy_meter.probability("password")
            > fuzzy_meter.probability("password123")
        )

    def test_unseen_structure_is_zero(self, fuzzy_meter):
        assert fuzzy_meter.probability("zzzzzz!!!!zzzz97531x") == 0.0

    def test_empty_password_is_zero(self, fuzzy_meter):
        assert fuzzy_meter.probability("") == 0.0

    def test_entropy_consistent(self, fuzzy_meter):
        p = fuzzy_meter.probability("password")
        assert fuzzy_meter.entropy("password") == pytest.approx(
            -math.log2(p)
        )

    def test_capitalized_variant_weaker_than_garbage(self, fuzzy_meter):
        # Password123 derives from password123's parse with one cap op.
        cap = fuzzy_meter.probability("Password123")
        assert 0 < cap < fuzzy_meter.probability("password123")

    def test_probabilities_batch(self, fuzzy_meter):
        passwords = ["password", "123456", "nosuchpw"]
        values = fuzzy_meter.probabilities(passwords)
        assert values == [fuzzy_meter.probability(pw) for pw in passwords]

    def test_measurement_is_pure_by_default(self, base_dictionary,
                                             training_passwords):
        meter = FuzzyPSM.train(base_dictionary, training_passwords)
        before = meter.probability("password")
        for _ in range(5):
            meter.probability("password")
        assert meter.probability("password") == before

    def test_auto_update_config(self, base_dictionary, training_passwords):
        meter = FuzzyPSM.train(
            base_dictionary, training_passwords,
            config=FuzzyPSMConfig(auto_update=True),
        )
        before = meter.probability("password")
        meter.probability("password")
        assert meter.probability("password") > before


class TestExplain:
    def test_explanation_fields(self, fuzzy_meter):
        explanation = fuzzy_meter.explain("P@ssw0rd123")
        assert explanation.password == "P@ssw0rd123"
        assert explanation.probability == fuzzy_meter.probability(
            "P@ssw0rd123"
        )
        assert explanation.structure.startswith("B")
        assert any("capitalized" in desc for _, desc in explanation.segments)

    def test_explanation_lines_render(self, fuzzy_meter):
        lines = fuzzy_meter.explain("password123").lines()
        assert any("structure" in line for line in lines)


class TestUpdatePhase:
    def test_accept_increases_probability(self, base_dictionary,
                                           training_passwords):
        meter = FuzzyPSM.train(base_dictionary, training_passwords)
        target = "qwerty12"
        before = meter.probability(target)
        meter.accept(target, count=10)
        assert meter.probability(target) > before

    def test_accept_makes_unseen_structures_derivable(self, base_dictionary,
                                                      training_passwords):
        meter = FuzzyPSM.train(base_dictionary, training_passwords)
        novel = "password!!!!!!"
        assert meter.probability(novel) == 0.0
        meter.accept(novel)
        assert meter.probability(novel) > 0.0

    def test_accept_empty_rejected(self, fuzzy_meter):
        with pytest.raises(ValueError):
            fuzzy_meter.accept("")


class TestGuessEnumeration:
    def test_guesses_descending(self, fuzzy_meter):
        guesses = list(fuzzy_meter.iter_guesses(limit=200))
        probabilities = [p for _, p in guesses]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_guesses_unique(self, fuzzy_meter):
        guesses = [g for g, _ in fuzzy_meter.iter_guesses(limit=200)]
        assert len(guesses) == len(set(guesses))

    def test_guess_probabilities_match_measure(self, fuzzy_meter):
        for guess, probability in fuzzy_meter.iter_guesses(limit=50):
            assert fuzzy_meter.probability(guess) == pytest.approx(
                probability, rel=1e-9
            ), guess

    def test_top_guess_is_most_probable_training_password(self, fuzzy_meter):
        top_guess, _ = next(iter(fuzzy_meter.iter_guesses(limit=1)))
        assert top_guess in ("password", "123456")

    def test_untrained_meter_yields_nothing(self, base_dictionary):
        meter = FuzzyPSM.train(base_dictionary, [])
        assert list(meter.iter_guesses(limit=5)) == []


class TestSampling:
    def test_sample_agrees_with_measure(self, fuzzy_meter, rng):
        # The rejection sampler only returns canonical derivations, so
        # the sampled probability must equal the measured one exactly.
        for _ in range(100):
            password, probability = fuzzy_meter.sample(rng)
            assert fuzzy_meter.probability(password) == pytest.approx(
                probability, rel=1e-12
            )

    def test_sample_only_positive_probability(self, fuzzy_meter, rng):
        for _ in range(100):
            _, probability = fuzzy_meter.sample(rng)
            assert probability > 0
