"""Hot-reload and fault-injection tests for the serving layer.

Two lifecycle guarantees under test, both black-box:

* **Hot reload**: an ``/accept`` (online ``update()`` + snapshot swap)
  in the middle of concurrent ``/check`` traffic drops zero requests,
  and every response is *consistent with the epoch it reports* — old
  snapshot scores before the swap, new snapshot scores after, never a
  half-updated hybrid.
* **Worker faults**: SIGKILLing a scoring worker never loses a
  request (the pool redispatches/respawns), and ``/healthz`` reflects
  the degraded → healthy transition.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.core.meter import FuzzyPSM
from repro.serve import ServeConfig

from tests.serve_utils import (
    ServeClient,
    one_shot,
    run,
    running_server,
    train_serve_meter,
)

#: The online update applied mid-traffic; with count high enough the
#: post-swap probabilities differ measurably from pre-swap.
ACCEPTED_PASSWORD = "zebra42!"
ACCEPTED_COUNT = 50

#: Passwords whose scores the reload traffic keeps checking.
TRAFFIC = ["password", "password123", "qwerty12", "monkey99",
           "woaini520", ACCEPTED_PASSWORD]


def _clone(meter: FuzzyPSM) -> FuzzyPSM:
    return FuzzyPSM.from_dict(meter.to_dict())


def test_hot_reload_mid_traffic_consistent_and_lossless():
    meter = train_serve_meter()
    pre_epoch = meter.grammar.epoch
    pre_reference = {
        pw: _clone(meter).probability(pw) for pw in TRAFFIC
    }
    post_meter = _clone(meter)
    post_meter.update(ACCEPTED_PASSWORD, ACCEPTED_COUNT)
    post_reference = {
        pw: post_meter.probability(pw) for pw in TRAFFIC
    }
    # The update must actually change something, or consistency
    # against the reported epoch would be vacuous.
    assert post_reference[ACCEPTED_PASSWORD] != pre_reference[
        ACCEPTED_PASSWORD
    ]

    responses = []

    async def traffic_loop(port, rounds):
        async with ServeClient(port) as client:
            for _ in range(rounds):
                for password in TRAFFIC:
                    responses.append(
                        (password, await client.check(password))
                    )

    async def main():
        config = ServeConfig(workers=2, batch_window=0.001)
        async with running_server(meter, config) as server:
            clients = [
                asyncio.ensure_future(traffic_loop(server.port, 6))
                for _ in range(4)
            ]
            await asyncio.sleep(0.05)  # let pre-swap traffic flow
            status, payload = await one_shot(
                server.port, "POST", "/accept",
                {"password": ACCEPTED_PASSWORD,
                 "count": ACCEPTED_COUNT},
            )
            assert status == 200
            assert payload["epoch"] == pre_epoch + 1
            await asyncio.gather(*clients)
            # Sequential-after-accept: a fresh request must see the
            # new epoch (the swap completed before /accept answered).
            final = await one_shot(
                server.port, "POST", "/check",
                {"password": ACCEPTED_PASSWORD},
            )
            assert final[1]["epoch"] == pre_epoch + 1

    run(main())

    assert len(responses) == 4 * 6 * len(TRAFFIC)  # zero dropped
    epochs_seen = set()
    for password, payload in responses:
        epoch = payload["epoch"]
        epochs_seen.add(epoch)
        if epoch == pre_epoch:
            assert payload["probability"] == pre_reference[password]
        else:
            assert epoch == pre_epoch + 1
            assert payload["probability"] == post_reference[password]
    assert pre_epoch in epochs_seen  # traffic genuinely straddled
    assert pre_epoch + 1 in epochs_seen  # the swap


def test_accept_validates_input():
    meter = train_serve_meter()

    async def main():
        async with running_server(meter) as server:
            status, payload = await one_shot(
                server.port, "POST", "/accept", {"password": ""}
            )
            assert status == 400
            status, payload = await one_shot(
                server.port, "POST", "/accept",
                {"password": "ok-pass", "count": 0},
            )
            assert status == 400
            status, payload = await one_shot(
                server.port, "POST", "/accept",
                {"password": "ok-pass", "count": "many"},
            )
            assert status == 400

    run(main())


async def _wait_pool_unhealthy(server, deadline=15.0):
    """Wait (white-box) until the pool has noticed a worker death.

    SIGKILL delivery is asynchronous: immediately after ``os.kill``
    the victim can still look alive, so black-box assertions about
    the degraded state must wait for the corpse to be observable.
    This reads pool liveness directly — unlike a ``/healthz`` probe
    it cannot itself trigger a respawn.
    """
    elapsed = 0.0
    while server._pool.healthy():
        assert elapsed < deadline, "pool never saw the kill"
        await asyncio.sleep(0.01)
        elapsed += 0.01


async def _poll_health(port, want_status, deadline=15.0):
    """Poll /healthz until it reports ``want_status``."""
    interval = 0.02
    elapsed = 0.0
    while True:
        _, payload = await one_shot(port, "GET", "/healthz")
        if payload["status"] == want_status:
            return payload
        if elapsed >= deadline:
            pytest.fail(
                f"healthz never became {want_status!r}: {payload}"
            )
        await asyncio.sleep(interval)
        elapsed += interval


def test_killed_worker_respawns_and_healthz_tracks_it():
    meter = train_serve_meter()

    async def main():
        # supervisor off: the degraded state must be observable, and
        # recovery must come from the /healthz-triggered respawn.
        config = ServeConfig(workers=1, supervisor_interval=0.0,
                             batch_window=0.001)
        async with running_server(meter, config) as server:
            port = server.port
            status, payload = await one_shot(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "healthy"
            victim = payload["workers"][0]["pid"]

            os.kill(victim, signal.SIGKILL)
            await _wait_pool_unhealthy(server)
            status, payload = await one_shot(port, "GET", "/healthz")
            assert status == 503
            assert payload["status"] == "degraded"

            payload = await _poll_health(port, "healthy")
            assert payload["workers"][0]["alive"] is True

            # The respawned worker actually scores.
            status, checked = await one_shot(
                port, "POST", "/check", {"password": "password123"}
            )
            assert status == 200
            assert checked["probability"] > 0

    run(main())


def test_check_survives_worker_kill_without_dropping():
    """A request hitting a just-killed worker is redispatched (or
    scored inline as last resort) — the client always gets a score."""
    served = train_serve_meter()
    expected = _clone(served).probability("password123")

    async def main():
        config = ServeConfig(workers=1, supervisor_interval=0.0,
                             batch_window=0.0)
        async with running_server(served, config) as server:
            port = server.port
            _, payload = await one_shot(port, "GET", "/healthz")
            victim = payload["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            await _wait_pool_unhealthy(server)
            # No health probe: the /check itself discovers the corpse
            # and must still answer correctly.
            status, checked = await one_shot(
                port, "POST", "/check", {"password": "password123"}
            )
            assert status == 200
            assert checked["probability"] == expected

            status, metrics = await one_shot(port, "GET", "/metrics")
            counters = metrics["counters"]
            # The pool noticed the corpse one way or another: a pipe
            # crash mid-request, a liveness skip straight to the
            # inline fallback, or a respawn.
            recovered = (counters.get("serve.worker.crashes", 0)
                         + counters.get("serve.worker.respawns", 0)
                         + counters.get("serve.worker.fallback.inline",
                                        0))
            assert recovered >= 1

    run(main())


def test_supervisor_respawns_without_healthz_traffic():
    meter = train_serve_meter()

    async def main():
        config = ServeConfig(workers=1, supervisor_interval=0.02,
                             batch_window=0.001)
        async with running_server(meter, config) as server:
            port = server.port
            _, payload = await one_shot(port, "GET", "/healthz")
            victim = payload["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            await _wait_pool_unhealthy(server)
            # No request traffic at all (a /healthz poll would itself
            # trigger a respawn): the background supervisor alone must
            # restore the pool, observed white-box through the server.
            elapsed = 0.0
            while not server._pool.healthy():
                assert elapsed < 15.0, "supervisor never respawned"
                await asyncio.sleep(0.02)
                elapsed += 0.02
            status, checked = await one_shot(
                port, "POST", "/check", {"password": "password123"}
            )
            assert status == 200 and checked["probability"] > 0

    run(main())


def test_worker_mode_requires_parallel_scorable_capability():
    from repro.meters.nist import NISTMeter
    from repro.serve import ReproServer

    with pytest.raises(ValueError, match="parallel-scorable"):
        ReproServer(NISTMeter(), ServeConfig(workers=1))
