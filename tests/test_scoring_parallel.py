"""Differential tests for the two-layer scoring engine (ISSUE 5).

Layer 1 is the :class:`~repro.core.frozen.FrozenGrammar` kernel: a
compiled snapshot of the fuzzy grammar's count tables that must score
every derivation **bit-identically** to
:meth:`FuzzyGrammar.derivation_probability` — it is an execution
strategy, not a model change.  Layer 2 is process-parallel
``probability_many(jobs=N)``, which must reassemble worker results
into exactly the serial answer.

As in :mod:`tests.test_differential_parsing`, the fast paths are pit
against their references on generated inputs with
``derandomize=True``, so failures replay identically everywhere.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core import meter as meter_module  # noqa: E402
from repro.core.frozen import FrozenGrammar, freeze  # noqa: E402
from repro.core.meter import FuzzyPSM  # noqa: E402
from repro.meters.keepsm import KeePSMMeter  # noqa: E402
from repro.meters.nist import NISTMeter  # noqa: E402
from repro import obs  # noqa: E402

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS  # noqa: E402
from tests.test_differential_parsing import PASSWORDS  # noqa: E402

DETERMINISTIC = settings(max_examples=150, deadline=None,
                         derandomize=True)

_METER = FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS)

#: A fixed stream with duplicates, the empty string, transformed and
#: unparseable passwords — the shapes the engine special-cases.
FIXED_STREAM = [
    "password1", "password1", "Dr@gon99", "", "xyz123",
    "P@ssword", "dragon", "DRAGON99", "nogard", "password1",
    "monkey!", "m0nkey", "qqqqqq", "love2016", "evol",
] * 4


class TestFrozenKernel:
    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_bit_identical_to_dict_kernel(self, password):
        derivation = _METER.parse(password).to_derivation()
        exact = _METER.grammar.derivation_probability(derivation)
        fast = _METER.frozen_grammar().derivation_probability(derivation)
        # Bitwise equality, not isclose: the frozen kernel replays the
        # reference multiplication order factor for factor.
        assert fast == exact

    @given(password=PASSWORDS)
    @DETERMINISTIC
    def test_structure_and_terminal_views_agree(self, password):
        derivation = _METER.parse(password).to_derivation()
        frozen = _METER.frozen_grammar()
        grammar = _METER.grammar
        assert frozen.structure_probability(derivation.structure) == \
            grammar.structure_probability(derivation.structure)
        for segment in derivation.segments:
            assert frozen.terminal_probability(segment.base) == \
                grammar.terminal_probability(segment.base)

    def test_snapshot_is_cached_while_grammar_is_unchanged(self):
        meter = FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS)
        first = meter.frozen_grammar()
        assert meter.frozen_grammar() is first
        assert first.is_current(meter.grammar)

    def test_update_invalidates_the_snapshot(self):
        meter = FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS)
        stale = meter.frozen_grammar()
        meter.update("brandnewpassword7")
        assert not stale.is_current(meter.grammar)
        fresh = meter.frozen_grammar()
        assert fresh is not stale
        assert fresh.is_current(meter.grammar)
        derivation = meter.parse("brandnewpassword7").to_derivation()
        assert fresh.derivation_probability(derivation) == \
            meter.grammar.derivation_probability(derivation)

    def test_accept_invalidates_the_snapshot(self):
        meter = FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS)
        stale = meter.frozen_grammar()
        with pytest.warns(DeprecationWarning):
            meter.accept("password1")
        assert not stale.is_current(meter.grammar)
        assert meter.probability_many(["password1"]) == \
            [meter.probability("password1")]

    def test_freeze_helper_reuses_current_snapshots(self):
        grammar = _METER.grammar
        snapshot = freeze(grammar)
        assert freeze(grammar, stale=snapshot) is snapshot
        rebuilt = freeze(grammar, stale=None)
        assert rebuilt is not snapshot
        assert rebuilt.epoch == snapshot.epoch

    def test_counts_and_repr_reflect_the_tables(self):
        frozen = _METER.frozen_grammar()
        grammar = _METER.grammar
        assert frozen.structure_count == \
            sum(1 for _ in grammar.structures.items())
        assert frozen.terminal_count == sum(
            sum(1 for _ in dist.items())
            for dist in grammar.terminals.values()
        )
        assert "FrozenGrammar" in repr(frozen)


class TestParallelScoring:
    def test_jobs2_equals_serial_equals_per_call(self):
        per_call = [_METER.probability(pw) for pw in FIXED_STREAM]
        serial = _METER.probability_many(FIXED_STREAM)
        parallel = _METER.probability_many(
            FIXED_STREAM, jobs=2, parallel_threshold=1
        )
        assert parallel == serial == per_call

    def test_entropy_many_jobs_equals_per_call(self):
        parallel = _METER.entropy_many(
            FIXED_STREAM, jobs=2, parallel_threshold=1
        )
        assert parallel == [_METER.entropy(pw) for pw in FIXED_STREAM]

    def test_below_threshold_falls_back_to_serial(self):
        with obs.session() as telemetry:
            scores = _METER.probability_many(FIXED_STREAM, jobs=4)
            counters = telemetry.snapshot()["counters"]
        assert scores == [_METER.probability(pw) for pw in FIXED_STREAM]
        # The distinct count is far below PARALLEL_MIN_DISTINCT, so no
        # pool was spun up and the fallback counter recorded why.
        assert counters["meter.parallel.fallback.serial"] == 1
        assert counters["meter.batch.calls"] == 1
        assert "meter.parallel.calls" not in counters

    def test_parallel_records_telemetry(self):
        with obs.session() as telemetry:
            _METER.probability_many(
                FIXED_STREAM, jobs=2, parallel_threshold=1
            )
            counters = telemetry.snapshot()["counters"]
        assert counters["meter.parallel.calls"] == 1
        assert counters["meter.parallel.scores"] == len(FIXED_STREAM)
        assert counters["meter.parallel.distinct"] == \
            len(set(FIXED_STREAM))

    def test_small_distinct_jobs2_is_not_catastrophic(self):
        """Regression: jobs=2 at small distinct counts stays sane.

        Before the snapshot plane (DESIGN.md §16) every pool start-up
        pickled the compiled matchers and frozen grammar into each
        worker, so small batches under ``jobs=2`` could lose to serial
        by orders of magnitude — which is why the old parallel cutoff
        sat at 50k distinct.  Workers now attach to a named shared
        segment, so even a forced-parallel small batch must stay
        within a (generous, absolute) budget of the serial run: the
        bound catches a return of the broadcast tax, not scheduler
        jitter.
        """
        from repro.obs.core import now

        stream = [f"pw{i}x!" for i in range(2_100)]  # just above cutoff
        _METER.probability_many(stream[:1])  # warm caches/snapshot
        start = now()
        serial = _METER.probability_many(stream)
        serial_seconds = now() - start
        start = now()
        parallel = _METER.probability_many(stream, jobs=2)
        parallel_seconds = now() - start
        assert parallel == serial
        assert parallel_seconds <= max(2.0, serial_seconds * 25), (
            f"jobs=2 took {parallel_seconds:.3f}s vs serial "
            f"{serial_seconds:.3f}s on {len(stream)} distinct"
        )

    @given(batch=st.lists(PASSWORDS, max_size=20))
    @DETERMINISTIC
    def test_serial_batch_uses_frozen_kernel_correctly(self, batch):
        # The serial probability_many path scores through the frozen
        # kernel; the per-call path goes through the dict kernel.
        assert _METER.probability_many(batch) == \
            [_METER.probability(pw) for pw in batch]


class TestWorkerFunctions:
    """The pool worker, driven in-process for coverage and precision."""

    def teardown_method(self):
        meter_module._SCORE_PARSER = None
        meter_module._SCORE_FROZEN = None

    def _init_worker(self, meter):
        # The worker initializer only ever sees a segment *name*; the
        # in-process call exercises the same attach + materialize path
        # a pool worker runs (via the shm attach cache).
        meter_module._worker_init_shared(meter.shared_segment().name)

    def test_chunk_scores_match_the_meter(self):
        self._init_worker(_METER)
        chunk = sorted(set(FIXED_STREAM))
        values, seconds = meter_module._score_chunk(chunk)
        assert values == [_METER.probability(pw) for pw in chunk]
        assert seconds >= 0.0

    def test_uninitialised_worker_is_an_error(self):
        with pytest.raises(AssertionError):
            meter_module._score_chunk(["password1"])


class TestRuleMeterBatchOverrides:
    """The exact ``probability_many`` overrides for NIST and KeePSM."""

    NIST = NISTMeter(dictionary=BASE_DICTIONARY)
    KEEPSM = KeePSMMeter()

    @given(batch=st.lists(PASSWORDS, max_size=20))
    @DETERMINISTIC
    def test_nist_batch_equals_per_call(self, batch):
        assert self.NIST.probability_many(batch) == \
            [self.NIST.probability(pw) for pw in batch]

    @given(batch=st.lists(PASSWORDS, max_size=20))
    @DETERMINISTIC
    def test_keepsm_batch_equals_per_call(self, batch):
        assert self.KEEPSM.probability_many(batch) == \
            [self.KEEPSM.probability(pw) for pw in batch]

    def test_duplicates_are_memoised_not_recomputed(self):
        batch = ["password1"] * 5 + ["", "Dr@gon99"] * 3
        for meter in (self.NIST, self.KEEPSM):
            assert meter.probability_many(batch) == \
                [meter.probability(pw) for pw in batch]
