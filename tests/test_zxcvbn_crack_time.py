"""Unit tests for zxcvbn crack-time estimation and scoring."""

import pytest

from repro.meters.zxcvbn import ZxcvbnMeter, strength_report
from repro.meters.zxcvbn.crack_time import (
    crack_time_score,
    display_crack_time,
    entropy_to_crack_seconds,
)


class TestEntropyToCrackSeconds:
    def test_half_search_space(self):
        # 10 bits at 1 guess/s: 2^10 / 2 = 512 seconds.
        assert entropy_to_crack_seconds(
            10.0, guesses_per_second=1.0
        ) == pytest.approx(512.0)

    def test_default_rate(self):
        assert entropy_to_crack_seconds(0.0) == pytest.approx(
            0.5 / 10_000
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            entropy_to_crack_seconds(-1.0)
        with pytest.raises(ValueError):
            entropy_to_crack_seconds(10.0, guesses_per_second=0.0)


class TestScore:
    def test_bands(self):
        assert crack_time_score(1.0) == 0
        assert crack_time_score(10 ** 3) == 1
        assert crack_time_score(10 ** 5) == 2
        assert crack_time_score(10 ** 7) == 3
        assert crack_time_score(10 ** 9) == 4

    def test_thresholds_inclusive(self):
        assert crack_time_score(10 ** 2) == 1

    def test_monotone(self):
        scores = [crack_time_score(10.0 ** k) for k in range(0, 10)]
        assert scores == sorted(scores)

    def test_validation(self):
        with pytest.raises(ValueError):
            crack_time_score(-1.0)


class TestDisplay:
    def test_bands(self):
        assert display_crack_time(10.0) == "instant"
        assert display_crack_time(5 * 60.0) == "5 minutes"
        assert display_crack_time(3 * 3600.0) == "3 hours"
        assert display_crack_time(4 * 86400.0) == "4 days"
        assert display_crack_time(90 * 86400.0) == "3 months"
        assert display_crack_time(2 * 365.2425 * 86400.0) == "2 years"
        assert display_crack_time(10.0 ** 12) == "centuries"

    def test_validation(self):
        with pytest.raises(ValueError):
            display_crack_time(-1.0)


class TestMeterIntegration:
    @pytest.fixture(scope="class")
    def meter(self):
        return ZxcvbnMeter()

    def test_report_fields(self, meter):
        report = meter.report("password")
        assert report.password == "password"
        assert report.entropy_bits == meter.entropy("password")
        assert report.score == crack_time_score(report.crack_seconds)

    def test_weak_scores_low(self, meter):
        assert meter.score("password") == 0
        assert meter.score("123456") == 0

    def test_strong_scores_high(self, meter):
        assert meter.score("gT7#qLw9!xZ2pQ") >= 3

    def test_score_monotone_in_entropy(self, meter):
        passwords = ["password", "sunshine99x", "gT7#qLw9!xZ2pQ"]
        entropies = [meter.entropy(pw) for pw in passwords]
        scores = [meter.score(pw) for pw in passwords]
        assert entropies == sorted(entropies)
        assert scores == sorted(scores)

    def test_strength_report_function(self):
        report = strength_report("x", 20.0, guesses_per_second=1.0)
        assert report.crack_seconds == pytest.approx(2.0 ** 19)
