"""Property-based tests for rank metrics and guess-number machinery."""

import math
import random

from hypothesis import assume, given, settings, strategies as st

from repro.metrics.rank import kendall_tau, spearman_rho
from repro.metrics.unusable import count_unusable_guesses
from repro.metrics.enumeration import (
    descending_products,
    merge_weighted_descending,
)

scores = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=2, max_size=40,
)


class TestRankCorrelationProperties:
    @given(scores)
    def test_self_correlation_is_one_without_full_ties(self, xs):
        assume(len(set(xs)) > 1)
        assert kendall_tau(xs, xs) == 1.0
        assert spearman_rho(xs, xs) == 1.0

    @given(scores)
    def test_reversal_negates(self, xs):
        assume(len(set(xs)) == len(xs))  # no ties
        reversed_scores = [-x for x in xs]
        assert kendall_tau(xs, reversed_scores) == -1.0
        assert spearman_rho(xs, reversed_scores) == -1.0

    @given(st.integers(2, 30), st.data())
    def test_bounded(self, n, data):
        xs = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n, max_size=n,
        ))
        ys = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n, max_size=n,
        ))
        assume(len(set(xs)) > 1 and len(set(ys)) > 1)
        assert -1.0 <= kendall_tau(xs, ys) <= 1.0
        assert -1.0 <= spearman_rho(xs, ys) <= 1.0

    @given(scores, st.integers(0, 2**31))
    def test_symmetry(self, xs, seed):
        rng = random.Random(seed)
        ys = list(xs)
        rng.shuffle(ys)
        assume(len(set(xs)) > 1 and len(set(ys)) > 1)
        assert kendall_tau(xs, ys) == kendall_tau(ys, xs)
        assert spearman_rho(xs, ys) == spearman_rho(ys, xs)

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=40),
           st.integers(1, 10), st.integers(-5, 5))
    def test_invariance_under_monotone_transform(self, raw, scale, shift):
        # Integer-valued scores so the affine map cannot merge distinct
        # values through float rounding.
        xs = [float(value) for value in raw]
        assume(len(set(xs)) > 1)
        ys = [scale * x + shift for x in xs]
        assert kendall_tau(xs, ys) == 1.0
        assert abs(spearman_rho(xs, ys) - 1.0) < 1e-9


class TestEnumerationProperties:
    weighted = st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            st.lists(
                st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
                min_size=1, max_size=8,
            ),
        ),
        min_size=1, max_size=5,
    )

    @given(weighted)
    @settings(max_examples=50)
    def test_merge_weighted_descending_is_sorted(self, streams):
        def make_stream(values):
            ordered = sorted(values, reverse=True)
            return iter(
                (f"item{i}", value) for i, value in enumerate(ordered)
            )

        merged = merge_weighted_descending(
            [(weight, make_stream(values)) for weight, values in streams]
        )
        probabilities = [p for _, p in merged]
        assert probabilities == sorted(probabilities, reverse=True)

    @given(st.lists(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1,
                 max_size=5),
        min_size=1, max_size=3,
    ))
    @settings(max_examples=50)
    def test_descending_products_complete_and_sorted(self, factor_values):
        factors = [
            [(f"v{i}", p) for i, p in enumerate(sorted(vals, reverse=True))]
            for vals in factor_values
        ]
        results = list(descending_products(factors))
        expected_count = 1
        for vals in factor_values:
            expected_count *= len(vals)
        assert len(results) == expected_count
        probabilities = [p for _, p in results]
        assert probabilities == sorted(probabilities, reverse=True)
        # Every product appears exactly once.
        import itertools
        expected = sorted(
            (
                math.prod(p for _, p in combo)
                for combo in itertools.product(*factors)
            ),
            reverse=True,
        )
        for got, want in zip(probabilities, expected):
            assert abs(got - want) < 1e-9


class TestUnusableGuessesProperties:
    @given(
        st.lists(st.text(string := "abcdef", min_size=1, max_size=4),
                 min_size=1, max_size=50),
        st.sets(st.text(string, min_size=1, max_size=4), max_size=20),
    )
    @settings(max_examples=50)
    def test_monotone_in_checkpoint(self, guesses, test_set):
        stream = ((guess, 1.0) for guess in guesses)
        checkpoints = [1, 5, 10, 50]
        results = count_unusable_guesses(stream, test_set, checkpoints)
        values = [results[c] for c in checkpoints]
        assert values == sorted(values)

    @given(st.lists(st.text("abc", min_size=1, max_size=3),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_all_usable_when_test_set_covers_guesses(self, guesses):
        stream = ((guess, 1.0) for guess in guesses)
        results = count_unusable_guesses(stream, set(guesses), [100])
        assert results[100] == 0

    @given(st.lists(st.text("abc", min_size=1, max_size=3),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_all_unusable_when_test_set_empty(self, guesses):
        stream = ((guess, 1.0) for guess in guesses)
        results = count_unusable_guesses(stream, [], [1000])
        assert results[1000] == len(set(guesses))
