"""Integration tests for the scenario experiment runner."""

import pytest

from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.runner import (
    ExperimentConfig,
    build_meters,
    evaluate_meters,
    prepare_scenario_data,
    run_crossover,
    run_scenario,
)
from repro.experiments.scenarios import scenario
from repro.metrics.rank import spearman_rho


# Large enough that the paper's qualitative orderings are stable
# (3k-sized corpora leave under ten f>=4 test passwords — pure noise).
@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(corpus_size=12_000, base_corpus_size=60_000)


@pytest.fixture(scope="module")
def ecosystem():
    return SyntheticEcosystem(seed=11, population=20_000)


@pytest.fixture(scope="module")
def ideal_result(ecosystem, config):
    return run_scenario(
        scenario("ideal-csdn"), ecosystem=ecosystem, config=config,
        min_frequency=2,
    )


class TestPrepareScenarioData:
    def test_ideal_case_quarters(self, ecosystem, config):
        base, training, testing = prepare_scenario_data(
            scenario("ideal-csdn"), ecosystem, config
        )
        assert base.total == config.base_corpus_size
        assert training.total == config.corpus_size // 4
        assert testing.total == config.corpus_size // 4

    def test_real_case_composition(self, ecosystem, config):
        base, training, testing = prepare_scenario_data(
            scenario("real-csdn"), ecosystem, config
        )
        # Training = similar-service leak + one quarter of the test set.
        assert training.total == (
            config.corpus_size + config.corpus_size // 4
        )
        # Testing = the remaining three quarters.
        assert testing.total == 3 * (config.corpus_size // 4)

    def test_base_dataset_identity(self, ecosystem, config):
        base, _, _ = prepare_scenario_data(
            scenario("ideal-csdn"), ecosystem, config
        )
        assert base.name == "tianya"


class TestBuildMeters:
    def test_all_six_meters(self, ecosystem, config):
        base, training, _ = prepare_scenario_data(
            scenario("ideal-csdn"), ecosystem, config
        )
        meters = build_meters(base, training, config)
        assert [m.name for m in meters] == list(config.meters)

    def test_meter_subset(self, ecosystem, config):
        base, training, _ = prepare_scenario_data(
            scenario("ideal-csdn"), ecosystem, config
        )
        small = ExperimentConfig(
            corpus_size=config.corpus_size,
            base_corpus_size=config.base_corpus_size,
            meters=("fuzzyPSM", "NIST"),
        )
        meters = build_meters(base, training, small)
        assert [m.name for m in meters] == ["fuzzyPSM", "NIST"]

    def test_unknown_meter_rejected(self, ecosystem, config):
        base, training, _ = prepare_scenario_data(
            scenario("ideal-csdn"), ecosystem, config
        )
        bad = ExperimentConfig(meters=("fuzzyPSM", "Crystal Ball"))
        with pytest.raises(ValueError):
            build_meters(base, training, bad)


class TestRunScenario:
    def test_result_shape(self, ideal_result, config):
        assert ideal_result.scenario.name == "ideal-csdn"
        assert len(ideal_result.curves) == len(config.meters)
        assert ideal_result.metric_name == "kendall"
        assert ideal_result.test_unique >= 2

    def test_curves_share_grid(self, ideal_result):
        grids = {
            tuple(p.k for p in curve.points)
            for curve in ideal_result.curves
        }
        assert len(grids) == 1

    def test_correlations_in_range(self, ideal_result):
        for curve in ideal_result.curves:
            for point in curve.points:
                assert -1.0 <= point.value <= 1.0

    def test_curve_lookup(self, ideal_result):
        assert ideal_result.curve("fuzzyPSM").meter == "fuzzyPSM"
        with pytest.raises(KeyError):
            ideal_result.curve("nonexistent")

    def test_ranking_sorted_by_mean(self, ideal_result):
        ranking = ideal_result.ranking()
        means = [ideal_result.curve(name).mean for name in ranking]
        assert means == sorted(means, reverse=True)

    def test_academic_meters_beat_industry(self, ideal_result):
        """The paper's cross-cutting finding (Sec. I, 'Some insights')."""
        ranking = ideal_result.ranking()
        best_academic = min(
            ranking.index("fuzzyPSM"),
            ranking.index("PCFG"),
            ranking.index("Markov"),
        )
        worst_industry = max(
            ranking.index("Zxcvbn"),
            ranking.index("KeePSM"),
            ranking.index("NIST"),
        )
        assert best_academic < worst_industry

    def test_fuzzypsm_wins_on_weak_passwords(self, ecosystem, config):
        """Headline result: fuzzyPSM best on frequent (weak) passwords."""
        result = run_scenario(
            scenario("ideal-csdn"), ecosystem=ecosystem, config=config,
            min_frequency=4,
        )
        assert result.ranking()[0] == "fuzzyPSM"

    def test_spearman_metric(self, ecosystem, config):
        result = run_scenario(
            scenario("ideal-csdn"), ecosystem=ecosystem, config=config,
            metric=spearman_rho, metric_name="spearman", min_frequency=2,
        )
        assert result.metric_name == "spearman"
        for curve in result.curves:
            assert all(-1.0 <= p.value <= 1.0 for p in curve.points)

    def test_kendall_and_spearman_agree_on_ranking(self, ecosystem,
                                                   config, ideal_result):
        """Fig. 9(a) vs 9(b): both metrics give nearly the same picture."""
        spearman_result = run_scenario(
            scenario("ideal-csdn"), ecosystem=ecosystem, config=config,
            metric=spearman_rho, metric_name="spearman", min_frequency=2,
        )
        kendall_top = ideal_result.ranking()[:2]
        spearman_top = spearman_result.ranking()[:2]
        assert set(kendall_top) == set(spearman_top)


class TestEvaluateMeters:
    def test_min_frequency_filters(self, ecosystem, config):
        base, training, testing = prepare_scenario_data(
            scenario("ideal-csdn"), ecosystem, config
        )
        meters = build_meters(
            base, training,
            ExperimentConfig(meters=("NIST",)),
        )
        all_curves, n_all = evaluate_meters(meters, testing,
                                            min_frequency=1)
        popular_curves, n_popular = evaluate_meters(meters, testing,
                                                    min_frequency=4)
        assert n_popular < n_all

    def test_too_few_passwords_rejected(self, ecosystem, config):
        from repro.datasets.corpus import PasswordCorpus
        tiny = PasswordCorpus(["one"])
        with pytest.raises(ValueError):
            evaluate_meters([], tiny)


class TestRunCrossover:
    def test_crossover_on_small_scenario(self, ecosystem, config):
        report = run_crossover(
            scenario("ideal-csdn"), ecosystem=ecosystem, config=config,
            online_budget=1000, offline_budget=10**8,
        )
        assert [curves.name for curves in report.curves] == [
            "fuzzyPSM", "PCFG",
        ]
        assert report.online_budget == 1000
        assert report.offline_budget == 10**8
        for curves in report.curves:
            # Materialized online curve over the decade grid...
            assert [p.guesses for p in curves.online] == [
                1, 10, 100, 1000,
            ]
            assert 0.0 <= curves.online_fraction() <= 1.0
            # ...and the analytic offline extrapolation reaches 10^8
            # without materializing guesses past the online horizon.
            assert curves.offline[-1].guesses == 10**8
            assert (
                curves.offline_fraction() >= curves.online[0].cracked_fraction
            )
            assert curves.mask_set.entries
            assert curves.mask_set.source_guesses <= 1000

    def test_meter_override(self, ecosystem, config):
        report = run_crossover(
            scenario("ideal-csdn"), ecosystem=ecosystem, config=config,
            meters=("Markov", "PCFG"), online_budget=100,
            offline_budget=10**6, enumerate_limit=200,
        )
        assert [curves.name for curves in report.curves] == [
            "Markov", "PCFG",
        ]

    def test_non_generative_meter_rejected(self, ecosystem, config):
        with pytest.raises(TypeError, match="guess enumeration"):
            run_crossover(
                scenario("ideal-csdn"), ecosystem=ecosystem,
                config=config, meters=("fuzzyPSM", "NIST"),
                online_budget=100, offline_budget=10**6,
            )
