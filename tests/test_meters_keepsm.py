"""Unit tests for the KeePSM (KeePass quality estimator) meter."""

import math

import pytest

from repro.meters.keepsm import KeePSMMeter, _char_cost


class TestCharCost:
    def test_lowercase(self):
        assert _char_cost("a") == pytest.approx(math.log2(26))

    def test_uppercase(self):
        assert _char_cost("Z") == pytest.approx(math.log2(26))

    def test_digit(self):
        assert _char_cost("7") == pytest.approx(math.log2(10))

    def test_symbol(self):
        assert _char_cost("!") == pytest.approx(math.log2(33))


class TestDictionaryPattern:
    def test_ranked_entry_is_cheap(self):
        meter = KeePSMMeter(["password", "123456"])
        # rank 1 -> log2(1) + 1 = 1 bit, far below 8 plain chars.
        assert meter.entropy("password") == pytest.approx(1.0)

    def test_rank_order_matters(self):
        meter = KeePSMMeter(["password", "123456"])
        assert meter.entropy("password") < meter.entropy("123456")

    def test_case_insensitive_costs_one_extra_bit(self):
        meter = KeePSMMeter(["password"])
        assert meter.entropy("PASSWORD") == pytest.approx(
            meter.entropy("password") + 1.0
        )

    def test_mapping_dictionary_accepted(self):
        meter = KeePSMMeter({"password": 5})
        assert meter.entropy("password") == pytest.approx(
            math.log2(5) + 1.0
        )

    def test_duplicate_words_keep_best_rank(self):
        meter = KeePSMMeter(["password", "other", "PASSWORD"])
        # Both spellings lower-case to rank 1.
        assert meter.entropy("password") == pytest.approx(1.0)

    def test_dictionary_word_inside_longer_password(self):
        meter = KeePSMMeter(["password"])
        # password + 3 non-sequence digits: 1 bit + 3 * log2(10).
        assert meter.entropy("password174") == pytest.approx(
            1.0 + 3 * math.log2(10)
        )

    def test_dictionary_word_plus_sequence_digits(self):
        meter = KeePSMMeter(["password"])
        # "123" is itself a sequence pattern: 1 bit + log2(10) + log2(3).
        assert meter.entropy("password123") == pytest.approx(
            1.0 + math.log2(10) + math.log2(3)
        )


class TestRepetitionPattern:
    def test_repeated_block_is_cheap(self):
        meter = KeePSMMeter()
        single = meter.entropy("xqzvkw")
        doubled = meter.entropy("xqzvkwxqzvkw")
        assert doubled < 2 * single

    def test_repetition_cost_formula(self):
        meter = KeePSMMeter()
        # "abcabc": but abc is also a sequence... use non-sequence text.
        # "xqzxqz": first 3 chars plain, repeat of "xqz" at start 3:
        # log2(3) + log2(3).
        expected = 3 * math.log2(26) + math.log2(3) + math.log2(3)
        assert meter.entropy("xqzxqz") == pytest.approx(expected)


class TestSequencePattern:
    def test_ascending_sequence_cheap(self):
        meter = KeePSMMeter()
        assert meter.entropy("abcdefgh") < meter.entropy("axqzpmvu")

    def test_descending_sequence_detected(self):
        meter = KeePSMMeter()
        assert meter.entropy("987654") < meter.entropy("918273")

    def test_constant_run_is_sequence(self):
        meter = KeePSMMeter()
        # 'aaaa' is a difference-0 sequence: log2(26) + log2(4).
        assert meter.entropy("aaaa") == pytest.approx(
            math.log2(26) + math.log2(4)
        )

    def test_sequence_cost_scales_with_log_length(self):
        meter = KeePSMMeter()
        assert meter.entropy("abcdefgh") == pytest.approx(
            math.log2(26) + math.log2(8)
        )


class TestMeterBehaviour:
    def test_empty_password_zero_bits(self):
        assert KeePSMMeter().entropy("") == 0.0

    def test_plain_password_sums_char_costs(self):
        meter = KeePSMMeter()
        assert meter.entropy("kq") == pytest.approx(2 * math.log2(26))

    def test_probability_decreases_with_entropy(self):
        meter = KeePSMMeter(["password"])
        assert meter.probability("password") > meter.probability("xkcdq17!")

    def test_min_pattern_length_validation(self):
        with pytest.raises(ValueError):
            KeePSMMeter(min_pattern_length=1)

    def test_mixed_password_uses_best_cover(self):
        meter = KeePSMMeter(["password"])
        # password + aaaa: 1 bit + sequence(aaaa).
        expected = 1.0 + math.log2(26) + math.log2(4)
        assert meter.entropy("passwordaaaa") == pytest.approx(expected)

    def test_paper_motivating_examples(self):
        # KeePSM at least notices that password-with-suffix is far from
        # random (the paper's criticism is about *relative* accuracy).
        meter = KeePSMMeter(["password", "123456"])
        weak = meter.entropy("password123")
        strong = meter.entropy("zH8$kQ!2pVx")
        assert weak < strong / 2
