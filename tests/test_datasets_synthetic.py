"""Unit tests for the survey-grounded synthetic corpus generator."""

import pytest

from repro.datasets.profiles import DATASET_ORDER, profile
from repro.datasets.stats import (
    composition_table,
    length_table,
    overlap_fraction,
    top_k_table,
)
from repro.datasets.synthetic import (
    SyntheticEcosystem,
    SyntheticUser,
    generate_corpus,
)


@pytest.fixture(scope="module")
def ecosystem():
    return SyntheticEcosystem(seed=3, population=10_000)


@pytest.fixture(scope="module")
def csdn(ecosystem):
    return ecosystem.generate("csdn", total=8_000)


@pytest.fixture(scope="module")
def rockyou(ecosystem):
    return ecosystem.generate("rockyou", total=8_000)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        first = SyntheticEcosystem(seed=5).generate("phpbb", total=500)
        second = SyntheticEcosystem(seed=5).generate("phpbb", total=500)
        assert first.counts() == second.counts()

    def test_different_seed_different_corpus(self):
        first = SyntheticEcosystem(seed=5).generate("phpbb", total=500)
        second = SyntheticEcosystem(seed=6).generate("phpbb", total=500)
        assert first.counts() != second.counts()

    def test_user_determinism(self):
        a = SyntheticUser(17, "English", seed=1)
        b = SyntheticUser(17, "English", seed=1)
        assert a.word == b.word
        assert a.digits == b.digits

    def test_generate_corpus_convenience(self):
        corpus = generate_corpus("yahoo", total=300, seed=9)
        assert corpus.total == 300
        assert corpus.name == "yahoo"


class TestValidation:
    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            SyntheticEcosystem(population=0)

    def test_total_must_be_positive(self, ecosystem):
        with pytest.raises(ValueError):
            ecosystem.generate("csdn", total=0)

    def test_unknown_dataset(self, ecosystem):
        with pytest.raises(KeyError):
            ecosystem.generate("linkedin")


class TestCalibration:
    def test_metadata_from_profile(self, csdn):
        assert csdn.name == "csdn"
        assert csdn.language == "Chinese"
        assert csdn.location == "China"

    def test_top10_head_present(self, csdn):
        table, share = top_k_table(csdn, k=10)
        generated_head = {pw for pw, _ in table}
        published_head = set(profile("csdn").top10)
        # The published top-10 should dominate the generated head.
        assert len(generated_head & published_head) >= 6

    def test_top10_share_close_to_published(self, csdn):
        published = profile("csdn").top10_share
        _, share = top_k_table(csdn, k=10)
        assert share == pytest.approx(published, abs=0.05)

    def test_min_length_policy_respected(self, csdn):
        assert all(len(pw) >= 8 for pw in csdn)

    def test_max_length_policy_respected(self, ecosystem):
        singles = ecosystem.generate("singles", total=2_000)
        assert all(len(pw) <= 8 for pw in singles)

    def test_composition_direction_chinese(self, csdn):
        fractions = composition_table(csdn)
        published = profile("csdn").composition
        # Digits-only should dominate as published (45% vs 12% lower).
        assert fractions["^[0-9]+$"] > fractions["^[a-z]+$"]
        assert fractions["^[0-9]+$"] == pytest.approx(
            published["^[0-9]+$"], abs=0.15
        )

    def test_composition_direction_english(self, rockyou):
        fractions = composition_table(rockyou)
        # Rockyou is letters-heavy: lower-only far above digit-only.
        assert fractions["^[a-z]+$"] > fractions["^[0-9]+$"]

    def test_duplication_factor_reasonable(self, csdn):
        # The generator should produce realistic duplication: clearly
        # above 1 (popular passwords repeat), below 10.
        factor = csdn.total / csdn.unique
        assert 1.1 < factor < 10.0

    def test_every_profile_generates(self, ecosystem):
        for name in DATASET_ORDER:
            corpus = ecosystem.generate(name, total=300)
            assert corpus.total == 300
            assert corpus.unique > 10


class TestEcosystemSharing:
    def test_same_language_services_overlap(self, ecosystem):
        weibo = ecosystem.generate("weibo", total=6_000)
        zhenai = ecosystem.generate("zhenai", total=6_000)
        assert overlap_fraction(weibo, zhenai) > 0.05

    def test_cross_language_overlap_lower(self, ecosystem, rockyou):
        tianya = ecosystem.generate("tianya", total=6_000)
        phpbb = ecosystem.generate("phpbb", total=6_000)
        same_language = overlap_fraction(phpbb, rockyou)
        cross_language = overlap_fraction(phpbb, tianya)
        # Fig. 12: same-language overlap clearly above cross-language.
        assert same_language > cross_language

    def test_private_ecosystems_overlap_less(self):
        shared = SyntheticEcosystem(seed=2, population=5_000)
        a = shared.generate("yahoo", total=4_000)
        b = shared.generate("phpbb", total=4_000)
        separate = generate_corpus("phpbb", total=4_000, seed=99)
        assert overlap_fraction(a, b) > overlap_fraction(a, separate)


class TestUserMaterial:
    def test_base_password_classes(self):
        user = SyntheticUser(3, "English", seed=0)
        assert user.base_password("digits").isdigit()
        assert user.base_password("lower").isalpha()
        combo = user.base_password("letters_digits")
        assert combo[:1].isalpha() and combo[-1:].isdigit()
        rev = user.base_password("digits_letters")
        assert rev[:1].isdigit() and rev[-1:].isalpha()
        assert any(not ch.isalnum() for ch in user.base_password("symbol"))

    def test_unknown_class_rejected(self):
        user = SyntheticUser(3, "English", seed=0)
        with pytest.raises(ValueError):
            user.base_password("emoji")

    def test_chinese_words_are_pinyin_like(self):
        user = SyntheticUser(5, "Chinese", seed=0)
        assert user.word.isalpha()
        assert user.word.islower()
