"""Tests for the multi-seed robustness runner."""

import pytest

from repro.experiments.robustness import (
    MeterRobustness,
    run_scenario_across_seeds,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenarios import scenario


@pytest.fixture(scope="module")
def result():
    return run_scenario_across_seeds(
        scenario("ideal-csdn"),
        seeds=(1, 2, 3),
        config=ExperimentConfig(corpus_size=6_000,
                                base_corpus_size=24_000),
        min_frequency=2,
        population=20_000,
    )


class TestAggregation:
    def test_every_meter_has_one_rank_per_seed(self, result):
        for entry in result.meters:
            assert len(entry.ranks) == 3
            assert len(entry.mean_taus) == 3

    def test_ranks_are_permutations(self, result):
        for index in range(3):
            positions = sorted(
                entry.ranks[index] for entry in result.meters
            )
            assert positions == list(range(len(result.meters)))

    def test_mean_rank_statistics(self):
        entry = MeterRobustness("m", ranks=(0, 2, 1), mean_taus=(0.5, 0.3, 0.4))
        assert entry.mean_rank == pytest.approx(1.0)
        assert entry.rank_stddev == pytest.approx((2 / 3) ** 0.5)
        assert entry.mean_tau == pytest.approx(0.4)
        assert entry.wins == 1

    def test_ranking_sorted_by_mean_rank(self, result):
        ranking = result.ranking()
        means = [result.meter(name).mean_rank for name in ranking]
        assert means == sorted(means)

    def test_meter_lookup(self, result):
        assert result.meter("fuzzyPSM").meter == "fuzzyPSM"
        with pytest.raises(KeyError):
            result.meter("nonexistent")

    def test_rows_format(self, result):
        rows = result.rows()
        assert len(rows) == len(result.meters)
        assert all(len(row) == 4 for row in rows)


class TestQualitativeStability:
    def test_nist_never_wins(self, result):
        assert result.meter("NIST").wins == 0

    def test_learned_meters_beat_nist_on_average(self, result):
        nist = result.meter("NIST").mean_rank
        for name in ("fuzzyPSM", "PCFG"):
            assert result.meter(name).mean_rank < nist

    def test_result_hook_called_per_seed(self):
        calls = []
        run_scenario_across_seeds(
            scenario("ideal-csdn"),
            seeds=(5, 6),
            config=ExperimentConfig(
                corpus_size=3_000, base_corpus_size=9_000,
                meters=("fuzzyPSM", "NIST"),
            ),
            min_frequency=2,
            population=10_000,
            result_hook=lambda seed, res: calls.append(seed),
        )
        assert calls == [5, 6]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_scenario_across_seeds(scenario("ideal-csdn"), seeds=())
