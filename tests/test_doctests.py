"""Run the library's doctests — every ``>>>`` example must stay true."""

import doctest
import importlib

import pytest

MODULES = [
    "repro.core.trie",
    "repro.core.grammar",
    "repro.core.parser",
    "repro.core.training",
    "repro.core.buckets",
    "repro.core.policy",
    "repro.core.suggestions",
    "repro.meters.base",
    "repro.meters.ideal",
    "repro.meters.nist",
    "repro.meters.pcfg",
    "repro.meters.markov",
    "repro.meters.keepsm",
    "repro.meters.zxcvbn",
    "repro.meters.zxcvbn.crack_time",
    "repro.meters.zxcvbn.scoring",
    "repro.metrics.rank",
    "repro.metrics.curves",
    "repro.metrics.enumeration",
    "repro.metrics.guesswork",
    "repro.datasets.corpus",
    "repro.datasets.stats",
    "repro.datasets.profiles",
    "repro.datasets.zipf",
    "repro.util.charclasses",
    "repro.util.freqdist",
    "repro.util.leet",
    "repro.attacks.simulator",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_doctest_coverage_is_meaningful():
    """At least half the listed modules actually carry examples —
    guards against the list silently rotting."""
    with_examples = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        if any(test.examples for test in finder.find(module)):
            with_examples += 1
    assert with_examples >= len(MODULES) // 2
