"""Unit tests for the Table-I attack simulator."""

import pytest

from repro.attacks.simulator import (
    HASH_PROFILES,
    AttackOutcome,
    HashFunctionProfile,
    LockoutPolicy,
    OfflineAttack,
    OnlineAttack,
    head_guess_stream,
)
from repro.datasets.corpus import PasswordCorpus


@pytest.fixture()
def accounts():
    return PasswordCorpus(
        {"123456": 50, "password": 30, "dragon": 15, "rareone": 5},
        name="site",
    )


def stream(*passwords):
    return iter((pw, 1.0) for pw in passwords)


class TestLockoutPolicy:
    def test_nist_default(self):
        policy = LockoutPolicy()
        assert policy.attempts_per_window == 100
        assert policy.total_attempts == 100

    def test_windows_multiply(self):
        policy = LockoutPolicy(attempts_per_window=100, windows=3)
        assert policy.total_attempts == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            LockoutPolicy(attempts_per_window=0)
        with pytest.raises(ValueError):
            LockoutPolicy(windows=0)


class TestOnlineAttack:
    def test_budget_caps_guesses(self, accounts):
        attack = OnlineAttack(LockoutPolicy(attempts_per_window=2))
        outcome = attack.run(
            stream("123456", "password", "dragon"), accounts
        )
        # Only the first two guesses land before lockout.
        assert outcome.accounts_compromised == 80
        assert outcome.guesses_per_account == 2

    def test_popular_passwords_fall_first(self, accounts):
        attack = OnlineAttack(LockoutPolicy(attempts_per_window=1))
        outcome = attack.run(stream("123456"), accounts)
        assert outcome.accounts_compromised == 50
        assert outcome.compromise_rate == pytest.approx(0.5)

    def test_misses_cost_budget(self, accounts):
        attack = OnlineAttack(LockoutPolicy(attempts_per_window=2))
        outcome = attack.run(
            stream("wrong1", "wrong2", "123456"), accounts
        )
        assert outcome.accounts_compromised == 0

    def test_duplicate_guesses_free(self, accounts):
        attack = OnlineAttack(LockoutPolicy(attempts_per_window=2))
        outcome = attack.run(
            stream("123456", "123456", "password"), accounts
        )
        assert outcome.accounts_compromised == 80

    def test_empty_accounts_rejected(self):
        with pytest.raises(ValueError):
            OnlineAttack().run(stream("x"), PasswordCorpus([]))

    def test_summary(self, accounts):
        outcome = OnlineAttack().run(stream("123456"), accounts)
        assert "accounts" in outcome.summary()
        assert isinstance(outcome, AttackOutcome)


class TestHashProfiles:
    def test_known_profiles(self):
        assert HASH_PROFILES["md5"].rate > HASH_PROFILES["bcrypt"].rate
        assert HASH_PROFILES["plaintext"].rate == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            HashFunctionProfile("broken", 0.0)


class TestOfflineAttack:
    def test_slow_hash_shrinks_budget(self, accounts):
        fast = OfflineAttack(HASH_PROFILES["md5"], seconds=3600)
        slow = OfflineAttack(HASH_PROFILES["bcrypt"], seconds=3600)
        assert fast.guess_budget(accounts.total) > slow.guess_budget(
            accounts.total
        )

    def test_salting_divides_budget(self, accounts):
        salted = OfflineAttack(HASH_PROFILES["sha256"], seconds=1.0,
                               salted=True)
        unsalted = OfflineAttack(HASH_PROFILES["sha256"], seconds=1.0,
                                 salted=False)
        assert unsalted.guess_budget(accounts.total) == pytest.approx(
            salted.guess_budget(accounts.total) * accounts.total,
            rel=0.01,
        )

    def test_offline_budget_exceeds_online(self, accounts):
        """Table I's core contrast: offline >> online budgets."""
        offline = OfflineAttack(HASH_PROFILES["sha256"],
                                seconds=24 * 3600)
        assert offline.guess_budget(accounts.total) > 10 ** 4

    def test_bcrypt_defends(self):
        """Footnote 5: slow hashes partially relieve offline guessing.
        Against a large salted file, bcrypt leaves a per-account
        budget close to the online regime."""
        big_site = 10 ** 6
        budget = OfflineAttack(
            HASH_PROFILES["bcrypt"], seconds=24 * 3600
        ).guess_budget(big_site)
        assert budget < 10 ** 4

    def test_run_respects_budget(self, accounts):
        attack = OfflineAttack(
            HashFunctionProfile("slow", rate=accounts.total * 2.0),
            seconds=1.0,
        )
        # budget = 2 guesses/account.
        outcome = attack.run(
            stream("123456", "password", "dragon"), accounts
        )
        assert outcome.guesses_per_account == 2
        assert outcome.accounts_compromised == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            OfflineAttack(HASH_PROFILES["md5"], seconds=0)
        with pytest.raises(ValueError):
            OfflineAttack(HASH_PROFILES["md5"]).guess_budget(0)
        with pytest.raises(ValueError):
            OfflineAttack(HASH_PROFILES["md5"]).run(
                stream("x"), PasswordCorpus([])
            )


class TestHeadGuessStream:
    def test_descending_popularity(self, accounts):
        guesses = list(head_guess_stream(accounts))
        assert [g for g, _ in guesses] == [
            "123456", "password", "dragon", "rareone"
        ]
        probabilities = [p for _, p in guesses]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_limit(self, accounts):
        assert len(list(head_guess_stream(accounts, limit=2))) == 2


class TestEndToEnd:
    def test_online_vs_offline_contrast(self):
        """The taxonomy's punchline, executed: the same attacker
        recovers a few percent online but the majority offline."""
        from repro.datasets.synthetic import SyntheticEcosystem
        import random
        ecosystem = SyntheticEcosystem(seed=4, population=8_000)
        corpus = ecosystem.generate("phpbb", total=8_000)
        train, _, _, test = corpus.split([0.25] * 4, random.Random(1))

        online = OnlineAttack(LockoutPolicy(attempts_per_window=100))
        online_outcome = online.run(head_guess_stream(train), test)

        offline = OfflineAttack(HASH_PROFILES["plaintext"])
        offline_outcome = offline.run(head_guess_stream(train), test)

        assert 0.0 < online_outcome.compromise_rate < 0.6
        assert (
            offline_outcome.compromise_rate
            > online_outcome.compromise_rate
        )
