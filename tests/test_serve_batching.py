"""Hypothesis differential for the micro-batcher.

The batcher must be *score-invisible*: for any interleaving of
concurrent submissions, any coalescing window and any ``max_batch``,
the results are exactly what one-call-per-password would produce, and
the telemetry reconciles — every request in becomes exactly one
response out, with no batch ever exceeding ``max_batch``.
"""

from __future__ import annotations

import asyncio
import zlib
from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.core import Telemetry
from repro.serve import MicroBatcher, ServingSnapshot

from tests.serve_utils import SERVE_PASSWORDS, train_serve_meter

#: A deterministic stand-in scorer (stable across processes).
def fake_score(password: str) -> float:
    return (zlib.crc32(password.encode("utf-8")) % 10_000) / 10_000.0


def drive_batcher(
    submissions: List[Tuple[str, float]],
    window: float,
    max_batch: int,
) -> Tuple[List[Tuple[int, float]], Telemetry, List[int]]:
    """Run one interleaving; returns (results, telemetry, batch sizes)."""
    telemetry = Telemetry()
    batch_sizes: List[int] = []

    async def backend(batch: List[str]) -> Tuple[int, List[float]]:
        batch_sizes.append(len(batch))
        await asyncio.sleep(0)  # yield, as a real backend would
        return 7, [fake_score(pw) for pw in batch]

    async def submit_after(batcher, password, delay):
        if delay:
            await asyncio.sleep(delay)
        return await batcher.submit(password)

    async def main():
        batcher = MicroBatcher(
            backend, window=window, max_batch=max_batch,
            telemetry=telemetry,
        )
        await batcher.start()
        try:
            return await asyncio.gather(*[
                submit_after(batcher, password, delay)
                for password, delay in submissions
            ])
        finally:
            await batcher.stop()

    return asyncio.run(main()), telemetry, batch_sizes


@settings(derandomize=True, deadline=None, max_examples=40)
@given(
    submissions=st.lists(
        st.tuples(
            st.one_of(
                st.sampled_from(SERVE_PASSWORDS),
                st.text(max_size=8),
            ),
            st.sampled_from([0.0, 0.0, 0.001, 0.003]),
        ),
        min_size=1, max_size=40,
    ),
    window=st.sampled_from([0.0, 0.0005, 0.002]),
    max_batch=st.sampled_from([1, 2, 3, 7, 256]),
)
def test_micro_batched_equals_unbatched(submissions, window, max_batch):
    results, telemetry, batch_sizes = drive_batcher(
        submissions, window, max_batch
    )
    # Differential: coalescing never changes any score, and every
    # result carries the backend's epoch.
    assert results == [
        (7, fake_score(password)) for password, _delay in submissions
    ]
    # Counters reconcile: requests in == responses out.
    requests = telemetry.counter("serve.batch.requests")
    responses = telemetry.counter("serve.batch.responses")
    assert requests == responses == len(submissions)
    assert telemetry.counter("serve.batch.dispatches") == len(batch_sizes)
    # No dispatch ever exceeds the cap, and the batch sizes account
    # for every request exactly once.
    assert all(1 <= size <= max_batch for size in batch_sizes)
    assert sum(batch_sizes) == len(submissions)
    if max_batch == 1:
        assert all(size == 1 for size in batch_sizes)


def test_batched_scores_match_real_meter_exactly():
    """Same differential against the real frozen-kernel scorer."""
    meter = train_serve_meter()
    scorer = ServingSnapshot.from_meter(meter).build_scorer()
    expected = {pw: meter.probability(pw) for pw in SERVE_PASSWORDS}

    async def backend(batch):
        return scorer.epoch, scorer.score_many(batch)

    async def main():
        batcher = MicroBatcher(backend, window=0.001, max_batch=8)
        await batcher.start()
        try:
            passwords = SERVE_PASSWORDS * 3
            results = await asyncio.gather(*[
                batcher.submit(pw) for pw in passwords
            ])
            for password, (epoch, probability) in zip(
                passwords, results
            ):
                assert probability == expected[password]
                assert epoch == scorer.epoch
        finally:
            await batcher.stop()

    asyncio.run(main())


def test_failed_batch_fails_only_its_requests():
    telemetry = Telemetry()

    async def backend(batch):
        if any(pw == "boom" for pw in batch):
            raise RuntimeError("backend exploded")
        return 1, [fake_score(pw) for pw in batch]

    async def main():
        # window=0 and max_batch=1 so each request is its own batch:
        # the failure isolates deterministically.
        batcher = MicroBatcher(backend, window=0.0, max_batch=2,
                               telemetry=telemetry)
        await batcher.start()
        try:
            with pytest.raises(RuntimeError, match="batch scoring"):
                await batcher.submit("boom")
            # The batcher survives a failed dispatch.
            epoch, score = await batcher.submit("fine")
            assert (epoch, score) == (1, fake_score("fine"))
        finally:
            await batcher.stop()

    asyncio.run(main())
    assert telemetry.counter("serve.batch.errors") >= 1


def test_stop_fails_queued_requests_cleanly():
    async def backend(batch):  # pragma: no cover - never dispatched
        return 1, [0.0] * len(batch)

    async def main():
        batcher = MicroBatcher(backend, window=30.0, max_batch=256)
        await batcher.start()
        waiter = asyncio.ensure_future(batcher.submit("queued"))
        await asyncio.sleep(0.01)  # enqueue before the stop
        await batcher.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            await waiter

    asyncio.run(main())


def test_batcher_rejects_bad_parameters():
    async def backend(batch):  # pragma: no cover - never started
        return 1, [0.0] * len(batch)

    with pytest.raises(ValueError, match="window"):
        MicroBatcher(backend, window=-1.0)
    with pytest.raises(ValueError, match="batch"):
        MicroBatcher(backend, max_batch=0)
    with pytest.raises(RuntimeError, match="not running"):
        asyncio.run(MicroBatcher(backend).submit("x"))
