"""Unit tests for bucketed strength feedback."""

import pytest

from repro.core.buckets import (
    BucketScale,
    BucketedMeter,
    DEFAULT_LABELS,
    calibrate_scale,
)
from repro.datasets.corpus import PasswordCorpus
from repro.meters.nist import NISTMeter


class TestBucketScale:
    def test_label_boundaries(self):
        scale = BucketScale(("weak", "fair", "strong"), (10.0, 20.0))
        assert scale.label_for(5.0) == "weak"
        assert scale.label_for(10.0) == "fair"   # threshold is inclusive
        assert scale.label_for(19.9) == "fair"
        assert scale.label_for(20.0) == "strong"

    def test_index(self):
        scale = BucketScale(("weak", "strong"), (15.0,))
        assert scale.index_for(1.0) == 0
        assert scale.index_for(30.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketScale(("only",), ())
        with pytest.raises(ValueError):
            BucketScale(("a", "b"), (1.0, 2.0))   # too many thresholds
        with pytest.raises(ValueError):
            BucketScale(("a", "b", "c"), (5.0, 1.0))  # not ascending


class TestBucketedMeter:
    @pytest.fixture()
    def meter(self):
        scale = BucketScale(DEFAULT_LABELS, (15.0, 25.0, 40.0))
        return BucketedMeter(NISTMeter(), scale)

    def test_label(self, meter):
        assert meter.label("abc") == "weak"        # 8 bits
        assert meter.label("a" * 30) == "strong"   # 45 bits

    def test_feedback_fields(self, meter):
        feedback = meter.feedback("abcdefgh")   # 18 bits -> fair
        assert feedback.label == "fair"
        assert feedback.index == 1
        assert feedback.entropy_bits == pytest.approx(18.0)
        assert 0.0 < feedback.probability < 1.0

    def test_accepted_convention(self, meter):
        assert not meter.feedback("abc").accepted
        assert meter.feedback("abcdefgh").accepted

    def test_accessors(self, meter):
        assert meter.meter.name == "NIST"
        assert meter.scale.labels == DEFAULT_LABELS


class TestCalibration:
    @pytest.fixture()
    def corpus(self):
        # Four length groups -> four distinct NIST entropies.
        return PasswordCorpus(
            ["abc"] * 25 + ["abcdef"] * 25
            + ["abcdefghij"] * 25 + ["abcdefghijklmn"] * 25
        )

    def test_even_quartiles(self, corpus):
        scale = calibrate_scale(NISTMeter(), corpus)
        meter = BucketedMeter(NISTMeter(), scale)
        labels = [
            meter.label(pw)
            for pw in ("abc", "abcdef", "abcdefghij", "abcdefghijklmn")
        ]
        assert labels == list(DEFAULT_LABELS)

    def test_custom_quantiles(self, corpus):
        scale = calibrate_scale(
            NISTMeter(), corpus, labels=("reject", "accept"),
            quantiles=(0.25,),
        )
        meter = BucketedMeter(NISTMeter(), scale)
        assert meter.label("abc") == "reject"
        assert meter.label("abcdef") == "accept"

    def test_thresholds_ascending(self, corpus):
        scale = calibrate_scale(NISTMeter(), corpus)
        assert list(scale.thresholds) == sorted(scale.thresholds)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            calibrate_scale(NISTMeter(), PasswordCorpus([]))

    def test_quantile_validation(self, corpus):
        with pytest.raises(ValueError):
            calibrate_scale(NISTMeter(), corpus, quantiles=(0.5,))
        with pytest.raises(ValueError):
            calibrate_scale(
                NISTMeter(), corpus,
                labels=("a", "b"), quantiles=(1.5,),
            )
        with pytest.raises(ValueError):
            calibrate_scale(
                NISTMeter(), corpus,
                labels=("a", "b", "c"), quantiles=(0.8, 0.2),
            )

    def test_degenerate_corpus_all_identical(self):
        corpus = PasswordCorpus(["samepw"] * 10)
        scale = calibrate_scale(NISTMeter(), corpus)
        # All mass in one entropy value: scale still well-formed.
        assert len(scale.thresholds) == len(DEFAULT_LABELS) - 1

    def test_weak_passwords_land_in_weak_bucket(self):
        """The paper's deployment story: the weakest quartile of real
        passwords is what a mandatory meter should reject."""
        corpus = PasswordCorpus(
            ["123456"] * 40 + ["password1"] * 30
            + ["Str0ng&Longer!"] * 30
        )
        scale = calibrate_scale(
            NISTMeter(), corpus, labels=("weak", "ok"), quantiles=(0.4,),
        )
        meter = BucketedMeter(NISTMeter(), scale)
        assert meter.label("123456") == "weak"
        assert meter.label("Str0ng&Longer!") == "ok"
