"""Unit tests for the common meter interface and scale conversions."""

import math

import pytest

from repro.meters.base import (
    Meter,
    ProbabilisticMeter,
    entropy_to_probability,
    probability_to_entropy,
)


class TestEntropyProbabilityConversion:
    def test_zero_entropy_is_certainty(self):
        assert entropy_to_probability(0.0) == 1.0

    def test_ten_bits(self):
        assert entropy_to_probability(10.0) == pytest.approx(1 / 1024)

    def test_negative_entropy_rejected(self):
        with pytest.raises(ValueError):
            entropy_to_probability(-1.0)

    def test_round_trip(self):
        for bits in (0.0, 1.0, 7.5, 20.0, 64.0):
            assert probability_to_entropy(
                entropy_to_probability(bits)
            ) == pytest.approx(bits)

    def test_zero_probability_maps_to_infinite_entropy(self):
        assert probability_to_entropy(0.0) == math.inf

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            probability_to_entropy(1.5)
        with pytest.raises(ValueError):
            probability_to_entropy(-0.1)

    def test_monotone_decreasing(self):
        values = [entropy_to_probability(b) for b in (0, 1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)


class _ConstantMeter(Meter):
    name = "constant"

    def __init__(self, value: float) -> None:
        self._value = value

    def probability(self, password: str) -> float:
        return self._value


class TestMeterInterface:
    def test_entropy_derived_from_probability(self):
        meter = _ConstantMeter(0.25)
        assert meter.entropy("anything") == pytest.approx(2.0)

    def test_probabilities_vectorised(self):
        meter = _ConstantMeter(0.5)
        assert meter.probabilities(["a", "b", "c"]) == [0.5, 0.5, 0.5]

    def test_probabilities_empty(self):
        assert _ConstantMeter(0.5).probabilities([]) == []

    def test_abstract_meter_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Meter()  # type: ignore[abstract]


class _BareProbabilistic(ProbabilisticMeter):
    name = "bare"

    def probability(self, password: str) -> float:
        return 0.5


class TestProbabilisticMeterDefaults:
    def test_sample_not_implemented_by_default(self):
        import random
        with pytest.raises(NotImplementedError):
            _BareProbabilistic().sample(random.Random(0))

    def test_iter_guesses_not_implemented_by_default(self):
        with pytest.raises(NotImplementedError):
            next(iter(_BareProbabilistic().iter_guesses()))
