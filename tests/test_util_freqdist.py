"""Unit tests for the counting frequency distribution."""

import pytest

from repro.util.freqdist import FrequencyDistribution


class TestCounting:
    def test_empty(self):
        fd = FrequencyDistribution()
        assert fd.total == 0
        assert fd.support_size == 0
        assert fd.probability("x") == 0.0

    def test_update_and_counts(self):
        fd = FrequencyDistribution(["a", "b", "a"])
        assert fd.count("a") == 2
        assert fd.count("b") == 1
        assert fd.count("c") == 0
        assert fd.total == 3

    def test_add_with_multiplicity(self):
        fd = FrequencyDistribution()
        fd.add("x", 10)
        assert fd.count("x") == 10
        assert fd.total == 10

    def test_add_zero_is_noop(self):
        fd = FrequencyDistribution()
        fd.add("x", 0)
        assert "x" not in fd
        assert fd.total == 0

    def test_negative_count_rejected(self):
        fd = FrequencyDistribution()
        with pytest.raises(ValueError):
            fd.add("x", -1)


class TestProbability:
    def test_mle(self):
        fd = FrequencyDistribution(["a"] * 3 + ["b"])
        assert fd.probability("a") == 0.75
        assert fd.probability("b") == 0.25

    def test_probabilities_sum_to_one(self):
        fd = FrequencyDistribution(list("abracadabra"))
        assert abs(sum(fd.probability(item) for item in fd) - 1.0) < 1e-12

    def test_smoothed_unseen_positive(self):
        fd = FrequencyDistribution(["a"] * 9)
        assert fd.smoothed_probability("zzz", alpha=1.0,
                                       vocabulary_size=10) > 0

    def test_smoothed_seen_discounted(self):
        fd = FrequencyDistribution(["a"] * 9 + ["b"])
        assert fd.smoothed_probability("a", alpha=1.0) < fd.probability("a")

    def test_smoothed_negative_alpha_rejected(self):
        fd = FrequencyDistribution(["a"])
        with pytest.raises(ValueError):
            fd.smoothed_probability("a", alpha=-0.1)


class TestRanking:
    def test_most_common_order(self):
        fd = FrequencyDistribution(["b"] * 2 + ["a"] * 5 + ["c"])
        assert [item for item, _ in fd.most_common()] == ["a", "b", "c"]

    def test_most_common_limit(self):
        fd = FrequencyDistribution(list("aabbbc"))
        assert len(fd.most_common(2)) == 2

    def test_ties_break_deterministically(self):
        fd1 = FrequencyDistribution(["x", "y"])
        fd2 = FrequencyDistribution(["y", "x"])
        assert fd1.most_common() == fd2.most_common()

    def test_counts_of_counts(self):
        fd = FrequencyDistribution(["a"] * 3 + ["b"] * 3 + ["c"])
        assert fd.counts_of_counts() == {3: 2, 1: 1}

    def test_iteration_and_len(self):
        fd = FrequencyDistribution(["a", "b"])
        assert set(fd) == {"a", "b"}
        assert len(fd) == 2
