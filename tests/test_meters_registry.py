"""Tests for the capability-based meter registry (DESIGN.md §10).

Covers the registration contract (declared capabilities are verified,
kinds are unique), lookup/resolution, the unified ``update`` verb and
its deprecation shims, batch-scoring exactness, and the headline
plugin promise: a toy meter registered in a test participates in
``repro meters``, the CLI ``--kind`` choices and persistence with no
other edits.
"""

from typing import Any, Dict, Iterable, List

import pytest

from repro.cli import main
from repro.core import FuzzyPSM
from repro.meters import MarkovMeter, PCFGMeter
from repro.meters import registry
from repro.meters.base import Meter
from repro.meters.registry import (
    BatchScorable,
    Capability,
    Persistable,
    TrainContext,
    Trainable,
    Updatable,
    register_meter,
)
from repro.persistence import load_meter, save_meter

SEED_KINDS = {
    "fuzzypsm", "ideal", "keepsm", "markov", "nist", "pcfg", "zxcvbn",
}


class TestCatalogue:
    def test_seed_kinds_registered(self):
        assert SEED_KINDS <= set(registry.meter_kinds())

    def test_specs_sorted_by_kind(self):
        kinds = list(registry.all_specs())
        assert kinds == sorted(kinds)

    def test_fuzzypsm_declares_full_lifecycle(self):
        spec = registry.get_spec("fuzzypsm")
        assert spec.capability_names() == [
            "batch-scorable", "binary-persistable", "parallel-scorable",
            "persistable", "stream-trainable", "trainable", "updatable",
        ]
        assert spec.requires_base_dictionary

    def test_rule_based_meters_are_static(self):
        for kind in ("zxcvbn", "keepsm", "nist"):
            spec = registry.get_spec(kind)
            assert not spec.has(Capability.TRAINABLE)
            assert not spec.has(Capability.PERSISTABLE)
            assert spec.has(Capability.BATCH_SCORABLE)

    def test_kinds_with_intersects_capabilities(self):
        trainable_persistable = registry.kinds_with(
            Capability.TRAINABLE, Capability.PERSISTABLE
        )
        assert trainable_persistable == ["fuzzypsm", "markov", "pcfg"]

    def test_resolve_kind_accepts_display_names(self):
        assert registry.resolve_kind("fuzzyPSM") == "fuzzypsm"
        assert registry.resolve_kind("FUZZYPSM") == "fuzzypsm"
        assert registry.resolve_kind("markov") == "markov"

    def test_resolve_unknown_kind_lists_registered(self):
        with pytest.raises(ValueError, match="unknown meter 'oracle'"):
            registry.resolve_kind("oracle")

    def test_spec_for_instance_class_and_subclass(self):
        spec = registry.get_spec("pcfg")
        assert registry.spec_for(PCFGMeter) is spec
        assert registry.spec_for(PCFGMeter.train(["abc1"])) is spec

        class LocalPCFG(PCFGMeter):
            pass

        assert registry.spec_for(LocalPCFG) is spec
        assert registry.spec_for(object()) is None

    def test_capability_protocols_are_runtime_checkable(self, pcfg_meter):
        assert isinstance(pcfg_meter, Trainable)
        assert isinstance(pcfg_meter, Updatable)
        assert isinstance(pcfg_meter, BatchScorable)
        assert isinstance(pcfg_meter, Persistable)


class TestRegistrationContract:
    def test_capability_declaration_is_verified(self):
        with pytest.raises(ValueError, match="does not define update"):
            @register_meter("liar", capabilities=(Capability.UPDATABLE,))
            class LiarMeter(Meter):  # lint-ok: FPM015 -- deliberately broken fixture: the test asserts the runtime registry rejects exactly this declaration
                def probability(self, password: str) -> float:
                    return 0.0
        assert "liar" not in registry.meter_kinds()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="duplicate meter kind"):
            @register_meter("pcfg")
            class ImpostorMeter(Meter):
                def probability(self, password: str) -> float:
                    return 0.0

    def test_kind_must_be_lowercase(self):
        with pytest.raises(ValueError, match="lowercase"):
            register_meter("PCFG")
        with pytest.raises(ValueError, match="lowercase"):
            register_meter("")

    def test_build_meter_requires_base_dictionary(self):
        with pytest.raises(ValueError, match="base dictionary"):
            registry.build_meter(
                "fuzzypsm", TrainContext(training=(("abc1", 1),))
            )

    def test_build_unknown_meter(self):
        with pytest.raises(ValueError, match="unknown meter"):
            registry.build_meter("oracle")


class TestUnifiedUpdateVerb:
    """``update`` and the deprecated spellings move models identically."""

    PROBES = ["trendpw99", "password", "123456", "trendpw9"]

    def _pair(self, factory):
        return factory(), factory()

    def test_fuzzy_accept_shim(self, base_dictionary, training_passwords):
        via_update, via_shim = self._pair(
            lambda: FuzzyPSM.train(base_dictionary, training_passwords)
        )
        via_update.update("trendpw99", count=5)
        with pytest.deprecated_call():
            via_shim.accept("trendpw99", count=5)
        for probe in self.PROBES:
            assert via_shim.probability(probe) == via_update.probability(
                probe
            )

    def test_pcfg_observe_shim(self, training_passwords):
        via_update, via_shim = self._pair(
            lambda: PCFGMeter.train(training_passwords)
        )
        via_update.update("trendpw99", count=5)
        with pytest.deprecated_call():
            via_shim.observe("trendpw99", count=5)
        for probe in self.PROBES:
            assert via_shim.probability(probe) == via_update.probability(
                probe
            )

    def test_markov_observe_shim(self, training_passwords):
        via_update, via_shim = self._pair(
            lambda: MarkovMeter.train(training_passwords, order=2)
        )
        via_update.update("trendpw99", count=5)
        with pytest.deprecated_call():
            via_shim.observe("trendpw99", count=5)
        for probe in self.PROBES:
            assert via_shim.probability(probe) == via_update.probability(
                probe
            )

    def test_update_raises_on_bad_input(self, fuzzy_meter):
        with pytest.raises(ValueError, match="empty"):
            fuzzy_meter.update("")
        with pytest.raises(ValueError, match="positive"):
            fuzzy_meter.update("abcdef1", count=0)


class TestBatchScoringExactness:
    """Overrides must stay bit-identical to the base-class loop."""

    PROBES = [
        "password", "password", "Password123", "p@ssw0rd", "123456",
        "zzz!!!", "qwerty12", "trendpw99", "123456",
    ]

    @pytest.fixture(scope="class")
    def context(self, base_dictionary, training_passwords):
        counts: Dict[str, int] = {}
        for password in training_passwords:
            counts[password] = counts.get(password, 0) + 1
        return TrainContext(
            training=tuple(counts.items()),
            base_dictionary=tuple(base_dictionary),
            dictionary=tuple(base_dictionary),
        )

    @pytest.mark.parametrize("kind", sorted(SEED_KINDS))
    def test_probability_many_matches_loop(self, kind, context):
        meter = registry.build_meter(kind, context)
        probes = self.PROBES
        assert meter.probability_many(probes) == Meter.probability_many(
            meter, probes
        )
        assert meter.entropy_many(probes) == Meter.entropy_many(
            meter, probes
        )

    def test_empty_batch(self, context):
        for kind in sorted(SEED_KINDS):
            meter = registry.build_meter(kind, context)
            assert meter.probability_many([]) == []


class ToyMeter(Meter):
    """A minimal plugin meter: relative frequency of trained passwords."""

    name = "Toy"

    def __init__(self, counts: Dict[str, int]) -> None:
        self._counts = dict(counts)

    @classmethod
    def train(cls, training: Iterable[Any]) -> "ToyMeter":
        counts: Dict[str, int] = {}
        for entry in training:
            password, count = (
                entry if isinstance(entry, tuple) else (entry, 1)
            )
            counts[password] = counts.get(password, 0) + count
        return cls(counts)

    def probability(self, password: str) -> float:
        total = sum(self._counts.values())
        if not total:
            return 0.0
        return self._counts.get(password, 0) / total

    def update(self, password: str, count: int = 1) -> None:
        self._counts[password] = self._counts.get(password, 0) + count

    def to_dict(self) -> Dict[str, Any]:
        return {"counts": self._counts}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ToyMeter":
        return cls(data["counts"])


# Registration is scoped to the plugin tests so the catalogue pins
# above (and every other module's) see exactly the seed meters.
@pytest.fixture(scope="module")
def toy_registered():
    register_meter(
        "toy",
        capabilities=(
            Capability.TRAINABLE,
            Capability.UPDATABLE,
            Capability.BATCH_SCORABLE,
            Capability.PERSISTABLE,
        ),
        summary="Unit-frequency lookup meter (test plugin)",
    )(ToyMeter)
    yield ToyMeter
    registry.unregister("toy")


def run_cli(capsys, *argv) -> "tuple":
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestToyMeterPluginEndToEnd:
    """Registering is the single integration point — no other edits."""

    def test_appears_in_catalogue_and_cli_listing(self, capsys,
                                                  toy_registered):
        assert "toy" in registry.meter_kinds()
        code, out, _ = run_cli(capsys, "meters")
        assert code == 0
        assert "toy" in out
        assert "Unit-frequency lookup meter" in out

    def test_trains_from_cli_and_round_trips(self, capsys, tmp_path,
                                             toy_registered):
        corpus = tmp_path / "train.txt"
        corpus.write_text("password\npassword\n123456\n")
        model = str(tmp_path / "toy.json")
        code, out, _ = run_cli(
            capsys, "train", "--training", str(corpus),
            "--kind", "toy", "--output", model,
        )
        assert code == 0
        assert "Toy" in out
        loaded = load_meter(model)
        assert isinstance(loaded, ToyMeter)
        assert loaded.probability("password") == 2 / 3

    def test_persistence_dispatch(self, tmp_path, toy_registered):
        meter = ToyMeter.train(["abc1", "abc1", "xyz2"])
        path = str(tmp_path / "toy.json")
        save_meter(meter, path)
        loaded = load_meter(path)
        assert loaded.probability("abc1") == meter.probability("abc1")

    def test_builds_through_registry(self, toy_registered):
        meter = registry.build_meter(
            "toy", TrainContext(training=(("abc1", 3),))
        )
        assert meter.probability("abc1") == 1.0
        meter.update("zzz9")
        assert meter.probability("abc1") == 0.75


class TestScoreTelemetry:
    """evaluate_meters times every meter's batch scoring by kind."""

    def test_per_meter_score_spans(self, base_dictionary,
                                   training_passwords):
        from repro import obs
        from repro.datasets import PasswordCorpus
        from repro.experiments.runner import evaluate_meters

        counts: Dict[str, int] = {}
        for password in training_passwords * 4:
            counts[password] = counts.get(password, 0) + 1
        test_corpus = PasswordCorpus(counts)
        context = TrainContext(
            training=tuple(counts.items()),
            base_dictionary=tuple(base_dictionary),
            dictionary=tuple(base_dictionary),
        )
        kinds = ["fuzzypsm", "pcfg", "markov", "zxcvbn", "keepsm", "nist"]
        meters: List[Meter] = [
            registry.build_meter(kind, context) for kind in kinds
        ]
        with obs.session() as telemetry:
            evaluate_meters(meters, test_corpus, min_frequency=1)
            histograms = telemetry.snapshot()["histograms"]
        assert histograms["experiment.score.seconds"]["count"] == 6
        for kind in kinds:
            name = f"experiment.score.{kind}.seconds"
            assert histograms[name]["count"] == 1, name
