"""Property-based tests for the baseline meters."""

import string

from hypothesis import given, settings, strategies as st

from repro.meters.keepsm import KeePSMMeter
from repro.meters.markov import MarkovMeter, Smoothing
from repro.meters.nist import NISTMeter, nist_entropy
from repro.meters.pcfg import PCFGMeter, password_slots
from repro.meters.zxcvbn import ZxcvbnMeter
from repro.util.charclasses import segment_by_class

printable = st.text(
    alphabet=string.ascii_letters + string.digits + "!@#._-",
    min_size=1, max_size=16,
)


class TestPCFGProperties:
    @given(st.lists(printable, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_training_passwords_derivable(self, passwords):
        meter = PCFGMeter.train(passwords)
        for password in passwords:
            assert meter.probability(password) > 0.0

    @given(printable)
    def test_slots_reassemble_password(self, password):
        segments = segment_by_class(password)
        assert "".join(seg.text for seg in segments) == password
        slots = password_slots(password)
        assert sum(length for _, length in slots) == len(password)

    @given(st.lists(printable, min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_guesses_descend_and_match_measure(self, passwords):
        meter = PCFGMeter.train(passwords)
        previous = 1.1
        for guess, probability in meter.iter_guesses(limit=50):
            assert probability <= previous + 1e-12
            assert abs(meter.probability(guess) - probability) < 1e-12
            previous = probability


class TestMarkovProperties:
    @given(st.lists(printable, min_size=1, max_size=20),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=30)
    def test_training_passwords_positive(self, passwords, order):
        meter = MarkovMeter.train(passwords, order=order)
        for password in passwords:
            assert meter.probability(password) > 0.0

    @given(st.lists(printable, min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_backoff_gives_everything_positive_probability(self, passwords):
        meter = MarkovMeter.train(
            passwords, order=2, smoothing=Smoothing.BACKOFF
        )
        # Back-off smoothing never assigns zero to printable strings.
        assert meter.probability("zq!7x") > 0.0

    @given(st.lists(printable, min_size=1, max_size=10),
           st.sampled_from(list(Smoothing)))
    @settings(max_examples=40)
    def test_probability_bounded(self, passwords, smoothing):
        meter = MarkovMeter.train(passwords, order=2, smoothing=smoothing)
        for password in passwords:
            assert 0.0 <= meter.probability(password) <= 1.0


class TestRuleBasedMeterProperties:
    @given(printable)
    def test_nist_entropy_non_negative_and_monotone(self, password):
        assert nist_entropy(password) >= 0.0
        assert nist_entropy(password + "x") > nist_entropy(password)

    @given(printable)
    def test_keepsm_entropy_bounded_by_plain_cost(self, password):
        meter = KeePSMMeter(["password"])
        entropy = meter.entropy(password)
        assert entropy >= 0.0
        # Pattern covers only ever lower the cost below plain chars.
        import math
        plain = sum(
            math.log2(95) for _ in password
        )
        assert entropy <= plain + 1e-9

    @given(printable)
    @settings(max_examples=40)
    def test_zxcvbn_entropy_bounded(self, password):
        meter = ZxcvbnMeter()
        entropy = meter.entropy(password)
        assert entropy >= 0.0
        import math
        assert entropy <= len(password) * math.log2(95) + 1e-9

    @given(printable)
    @settings(max_examples=40)
    def test_probabilities_in_unit_interval(self, password):
        for meter in (NISTMeter(), KeePSMMeter(), ZxcvbnMeter()):
            assert 0.0 < meter.probability(password) <= 1.0
