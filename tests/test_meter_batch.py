"""Batch scoring and parallel-training APIs of :class:`FuzzyPSM`.

The contract under test: every fast path (``probability_many``, the
parse cache, ``train_grammar(..., jobs=N)``) is an execution-strategy
change only — results are bit-for-bit those of the serial per-call
code.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.meter import FuzzyPSM, FuzzyPSMConfig
from repro.core.training import build_base_trie, train_grammar
from repro.util.freqdist import FrequencyDistribution

from tests.conftest import BASE_DICTIONARY, TRAINING_PASSWORDS


def probe_stream(rng: random.Random, count: int) -> list:
    """A Zipf-ish stream with many repeats, like a real measuring load."""
    head = ["password", "123456", "P@ssw0rd", "iloveyou1", "Dragon99"]
    probes = []
    for _ in range(count):
        if rng.random() < 0.6:
            probes.append(rng.choice(head))
        else:
            probes.append(
                rng.choice(BASE_DICTIONARY) + str(rng.randint(0, 999))
            )
    return probes


class TestProbabilityMany:
    def test_equals_per_call(self, fuzzy_meter, rng):
        probes = probe_stream(rng, 500)
        expected = [fuzzy_meter.probability(pw) for pw in probes]
        assert fuzzy_meter.probability_many(probes) == expected

    def test_duplicates_and_empty(self, fuzzy_meter):
        probes = ["password", "", "password", "", "zz!@"]
        expected = [fuzzy_meter.probability(pw) for pw in probes]
        assert fuzzy_meter.probability_many(probes) == expected
        assert fuzzy_meter.probability_many([]) == []

    def test_accepts_any_iterable(self, fuzzy_meter):
        expected = fuzzy_meter.probability_many(["password", "123456"])
        actual = fuzzy_meter.probability_many(
            pw for pw in ["password", "123456"]
        )
        assert actual == expected

    def test_probabilities_uses_batch_path(self, fuzzy_meter, rng):
        probes = probe_stream(rng, 100)
        assert (
            fuzzy_meter.probabilities(probes)
            == fuzzy_meter.probability_many(probes)
        )

    def test_entropy_many(self, fuzzy_meter, rng):
        probes = probe_stream(rng, 100) + ["\x00unseen\x00"]
        expected = [fuzzy_meter.entropy(pw) for pw in probes]
        actual = fuzzy_meter.entropy_many(probes)
        assert actual == expected
        assert math.isinf(actual[-1])

    def test_auto_update_matches_sequential_calls(self):
        config = FuzzyPSMConfig(auto_update=True)
        batch_meter = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS, config=config
        )
        serial_meter = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS, config=config
        )
        probes = ["newpass1", "newpass1", "password", "newpass1"]
        expected = [serial_meter.probability(pw) for pw in probes]
        # Each measurement updates the grammar, so later values differ
        # from a memoised batch — the batch API must preserve that.
        assert batch_meter.probability_many(probes) == expected
        assert batch_meter.grammar == serial_meter.grammar

    def test_compiled_and_pointer_meters_agree(self, rng):
        fast = FuzzyPSM.train(BASE_DICTIONARY, TRAINING_PASSWORDS)
        slow = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS,
            config=FuzzyPSMConfig(use_compiled_trie=False),
        )
        probes = probe_stream(rng, 300)
        assert fast.probability_many(probes) == slow.probability_many(probes)


class TestParallelTraining:
    @pytest.fixture(autouse=True)
    def _force_pool(self, monkeypatch):
        # The small-corpus fallback would route every fixture-sized
        # corpus here through the serial path, and the CPU clamp would
        # do the same on a single-core CI host (see
        # tests/test_training_fallback.py for those behaviours); drop
        # the cutoff and pretend to be multicore so the pool machinery
        # itself stays under test.
        monkeypatch.setattr(
            "repro.core.training.PARALLEL_MIN_ENTRIES", 0
        )
        monkeypatch.setattr(
            "repro.core.training._available_cpus", lambda: 2
        )

    def test_jobs2_equals_serial(self, rng):
        trie = build_base_trie(BASE_DICTIONARY)
        training = TRAINING_PASSWORDS * 20 + [
            ("password1", 7), ("Dragon!", 3)
        ] + probe_stream(rng, 400)
        serial = train_grammar(training, trie)
        parallel = train_grammar(training, trie, jobs=2)
        assert parallel == serial

    def test_jobs1_and_none_are_serial(self):
        trie = build_base_trie(BASE_DICTIONARY)
        expected = train_grammar(TRAINING_PASSWORDS, trie)
        assert train_grammar(TRAINING_PASSWORDS, trie, jobs=1) == expected
        assert train_grammar(TRAINING_PASSWORDS, trie, jobs=0) == expected

    def test_meter_train_jobs(self, fuzzy_meter):
        parallel = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS, jobs=2
        )
        assert parallel.grammar == fuzzy_meter.grammar
        assert (
            parallel.probability("P@ssw0rd123")
            == fuzzy_meter.probability("P@ssw0rd123")
        )

    def test_parallel_respects_flags(self):
        config = FuzzyPSMConfig(allow_reverse=True, allow_allcaps=True)
        serial = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS + ["drowssap", "DRAGON"],
            config=config,
        )
        parallel = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS + ["drowssap", "DRAGON"],
            config=config, jobs=2,
        )
        assert parallel.grammar == serial.grammar

    def test_negative_jobs_rejected(self):
        trie = build_base_trie(BASE_DICTIONARY)
        with pytest.raises(ValueError, match="jobs"):
            train_grammar(TRAINING_PASSWORDS, trie, jobs=-1)

    def test_empty_training_parallel(self):
        trie = build_base_trie(BASE_DICTIONARY)
        assert train_grammar([], trie, jobs=2) == train_grammar([], trie)


class TestCountValidation:
    def test_train_rejects_zero_count(self):
        trie = build_base_trie(BASE_DICTIONARY)
        with pytest.raises(ValueError, match="positive"):
            train_grammar([("password", 0)], trie)

    def test_train_rejects_negative_count_parallel(self):
        trie = build_base_trie(BASE_DICTIONARY)
        with pytest.raises(ValueError, match="positive"):
            train_grammar([("password", -3)], trie, jobs=2)

    def test_accept_rejects_bad_counts(self, base_dictionary,
                                       training_passwords):
        meter = FuzzyPSM.train(base_dictionary, training_passwords)
        with pytest.raises(ValueError, match="positive"):
            meter.accept("password1", count=0)
        with pytest.raises(ValueError, match="positive"):
            meter.accept("password1", count=-1)
        before = meter.grammar.total_passwords
        meter.accept("password1", count=2)
        assert meter.grammar.total_passwords == before + 2


class TestSerialisation:
    def test_to_dict_reuses_word_list(self, base_dictionary,
                                      training_passwords):
        meter = FuzzyPSM.train(base_dictionary, training_passwords)
        first = meter.to_dict()["base_words"]
        second = meter.to_dict()["base_words"]
        assert first is second  # materialised once, shared thereafter
        assert first == sorted(meter.trie.iter_words())

    def test_base_words_refreshes_on_trie_growth(self, base_dictionary,
                                                 training_passwords):
        meter = FuzzyPSM.train(base_dictionary, training_passwords)
        before = meter.base_words()
        meter.trie.insert("zzznewword")
        after = meter.base_words()
        assert after is not before
        assert "zzznewword" in after

    def test_round_trip_preserves_config_and_scores(self, rng):
        config = FuzzyPSMConfig(use_compiled_trie=False)
        meter = FuzzyPSM.train(
            BASE_DICTIONARY, TRAINING_PASSWORDS, config=config
        )
        clone = FuzzyPSM.from_dict(meter.to_dict())
        assert clone.config == config
        assert not clone.config.use_compiled_trie
        probes = probe_stream(rng, 100)
        assert clone.probability_many(probes) == \
            meter.probability_many(probes)

    def test_legacy_dict_defaults_to_compiled(self, fuzzy_meter):
        data = fuzzy_meter.to_dict()
        del data["config"]["use_compiled_trie"]
        clone = FuzzyPSM.from_dict(data)
        assert clone.config.use_compiled_trie


class TestGrammarMerge:
    def test_freqdist_merge_and_eq(self):
        left = FrequencyDistribution(["a", "a", "b"])
        right = FrequencyDistribution(["b", "c"])
        left.merge(right)
        assert left == FrequencyDistribution(["a", "a", "b", "b", "c"])
        assert left != FrequencyDistribution(["a"])
        assert left.total == 5

    def test_grammar_merge_equals_joint_training(self):
        trie = build_base_trie(BASE_DICTIONARY)
        first = TRAINING_PASSWORDS[:9]
        second = TRAINING_PASSWORDS[9:]
        merged = train_grammar(first, trie)
        merged.merge(train_grammar(second, trie))
        assert merged == train_grammar(TRAINING_PASSWORDS, trie)
