"""Unit tests for the practically ideal meter (Sec. II-B)."""

import pytest

from repro.meters.ideal import RELIABLE_FREQUENCY, IdealMeter


@pytest.fixture()
def meter():
    return IdealMeter(["123456"] * 6 + ["password"] * 4 + ["dragon"] * 2
                      + ["rareone"])


class TestProbability:
    def test_empirical_probability(self, meter):
        assert meter.probability("123456") == pytest.approx(6 / 13)
        assert meter.probability("password") == pytest.approx(4 / 13)

    def test_unseen_is_zero(self, meter):
        assert meter.probability("nope") == 0.0

    def test_probabilities_sum_to_one(self, meter):
        total = sum(
            meter.probability(pw) for pw in meter.distribution
        )
        assert total == pytest.approx(1.0)

    def test_from_mapping(self):
        meter = IdealMeter({"a": 3, "b": 1})
        assert meter.probability("a") == 0.75

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            IdealMeter([])


class TestGuessNumbers:
    def test_rank_order(self, meter):
        assert meter.guess_number("123456") == 1
        assert meter.guess_number("password") == 2
        assert meter.guess_number("dragon") == 3
        assert meter.guess_number("rareone") == 4

    def test_unseen_has_no_rank(self, meter):
        assert meter.guess_number("nope") is None

    def test_top(self, meter):
        assert meter.top(2) == [("123456", 6), ("password", 4)]


class TestReliability:
    def test_threshold_is_four(self):
        assert RELIABLE_FREQUENCY == 4

    def test_reliable_flags(self, meter):
        assert meter.is_reliable("123456")
        assert meter.is_reliable("password")
        assert not meter.is_reliable("dragon")
        assert not meter.is_reliable("nope")


class TestGuessStream:
    def test_iter_guesses_descending(self, meter):
        guesses = list(meter.iter_guesses())
        probs = [p for _, p in guesses]
        assert probs == sorted(probs, reverse=True)
        assert guesses[0][0] == "123456"

    def test_limit(self, meter):
        assert len(list(meter.iter_guesses(limit=2))) == 2
