"""Unit tests for the prefix trie and fuzzy longest-prefix matching."""

import pytest

from repro.core.trie import FuzzyMatch, PrefixTrie, toggle_partner


class TestInsertLookup:
    def test_insert_and_contains(self):
        trie = PrefixTrie()
        assert trie.insert("password")
        assert "password" in trie
        assert "passwor" not in trie

    def test_minimum_length_filter(self):
        trie = PrefixTrie(min_length=3)
        assert not trie.insert("ab")
        assert "ab" not in trie
        assert len(trie) == 0

    def test_duplicate_insert(self):
        trie = PrefixTrie(["abc"])
        assert not trie.insert("abc")
        assert len(trie) == 1

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            PrefixTrie(min_length=0)

    def test_iter_words_sorted(self):
        trie = PrefixTrie(["zebra", "abc", "abcd"])
        assert list(trie.iter_words()) == ["abc", "abcd", "zebra"]

    def test_non_string_not_contained(self):
        trie = PrefixTrie(["abc"])
        assert 123 not in trie


class TestExactPrefix:
    def test_longest_exact(self):
        trie = PrefixTrie(["pass", "password"])
        assert trie.longest_exact_prefix("password123") == "password"

    def test_shorter_fallback(self):
        trie = PrefixTrie(["pass", "password"])
        assert trie.longest_exact_prefix("passw1") == "pass"

    def test_no_match(self):
        trie = PrefixTrie(["abc"])
        assert trie.longest_exact_prefix("xyz") is None


class TestTogglePartner:
    def test_bidirectional(self):
        assert toggle_partner("a") == "@"
        assert toggle_partner("@") == "a"
        assert toggle_partner("0") == "o"

    def test_unpaired(self):
        assert toggle_partner("x") is None
        assert toggle_partner("2") is None


class TestFuzzyMatching:
    def test_exact_match_found(self):
        trie = PrefixTrie(["password"])
        match = trie.longest_fuzzy_match("password123")
        assert match.base == "password"
        assert match.length == 8
        assert not match.capitalized
        assert match.toggled_offsets == ()

    def test_capitalization_at_offset_zero(self):
        trie = PrefixTrie(["password"])
        match = trie.longest_fuzzy_match("Password123")
        assert match.base == "password"
        assert match.capitalized

    def test_capitalization_not_mid_segment(self):
        trie = PrefixTrie(["password"])
        # "pAssword": uppercase beyond offset 0 cannot match.
        assert trie.longest_fuzzy_match("pAssword") is None

    def test_leet_toggle(self):
        trie = PrefixTrie(["password"])
        match = trie.longest_fuzzy_match("p@ssw0rd")
        assert match.base == "password"
        assert match.toggled_offsets == (1, 5)

    def test_leet_toggle_reverse_direction(self):
        # Base dictionaries can contain substitute characters
        # (Table IV has B8 -> p@ssword); "a" then matches stored "@".
        trie = PrefixTrie(["p@ssword"])
        match = trie.longest_fuzzy_match("password")
        assert match.base == "p@ssword"
        assert match.toggled_offsets == (1,)

    def test_combined_cap_and_leet(self):
        trie = PrefixTrie(["password"])
        match = trie.longest_fuzzy_match("P@ssw0rd!!!")
        assert match.capitalized
        assert match.toggled_offsets == (1, 5)
        assert match.transformations == 3

    def test_longest_wins(self):
        trie = PrefixTrie(["pass", "password"])
        match = trie.longest_fuzzy_match("password")
        assert match.base == "password"

    def test_fewest_transformations_breaks_ties(self):
        # Both "p@ss" (0 toggles) and "pass" (1 toggle) match "p@ss".
        trie = PrefixTrie(["pass", "p@ss"])
        match = trie.longest_fuzzy_match("p@ssXYZ")
        assert match.base == "p@ss"
        assert match.transformations == 0

    def test_flags_disable_transformations(self):
        trie = PrefixTrie(["password"])
        assert trie.longest_fuzzy_match(
            "Password", allow_capitalization=False
        ) is None
        assert trie.longest_fuzzy_match(
            "p@ssword", allow_leet=False
        ) is None

    def test_all_matches_enumerated(self):
        trie = PrefixTrie(["pass", "password", "p@ss"])
        matches = trie.fuzzy_matches("p@ssword")
        bases = {m.base for m in matches}
        assert bases == {"pass", "password", "p@ss"}

    def test_no_match_returns_none(self):
        trie = PrefixTrie(["abc"])
        assert trie.longest_fuzzy_match("zzz") is None

    def test_empty_text(self):
        trie = PrefixTrie(["abc"])
        assert trie.longest_fuzzy_match("") is None
