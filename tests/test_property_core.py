"""Property-based tests (hypothesis) for the fuzzy-PCFG core."""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.core import FuzzyPSM
from repro.core.grammar import DerivedSegment, FuzzyGrammar, Derivation
from repro.core.training import build_base_trie
from repro.core.trie import PrefixTrie
from repro.util.leet import LEET_BY_LETTER

printable = st.text(
    alphabet=string.ascii_letters + string.digits + "!@#$%^&*()_+-=.",
    min_size=1, max_size=16,
)

lower_words = st.text(
    alphabet=string.ascii_lowercase, min_size=3, max_size=12
)


class TestPrefixTrieProperties:
    @given(st.lists(lower_words, min_size=1, max_size=30))
    def test_every_inserted_word_is_found(self, words):
        trie = PrefixTrie()
        for word in words:
            trie.insert(word)
        for word in words:
            assert word in trie

    @given(st.lists(lower_words, min_size=1, max_size=30), lower_words)
    def test_longest_prefix_is_a_real_prefix(self, words, query):
        trie = PrefixTrie()
        for word in words:
            trie.insert(word)
        result = trie.longest_exact_prefix(query)
        if result is not None:
            assert query.startswith(result)
            assert result in trie

    @given(st.lists(lower_words, min_size=1, max_size=30), lower_words)
    def test_longest_prefix_is_maximal(self, words, query):
        trie = PrefixTrie()
        for word in words:
            trie.insert(word)
        result = trie.longest_exact_prefix(query)
        longest_manual = max(
            (w for w in set(words) if query.startswith(w)),
            key=len, default=None,
        )
        assert result == longest_manual


class TestGrammarProperties:
    @given(st.lists(printable, min_size=1, max_size=25))
    @settings(max_examples=50)
    def test_training_passwords_always_derivable(self, passwords):
        meter = FuzzyPSM.train(
            base_dictionary=passwords, training=passwords
        )
        for password in passwords:
            assert meter.probability(password) > 0.0

    @given(st.lists(printable, min_size=2, max_size=25))
    @settings(max_examples=50)
    def test_probabilities_bounded(self, passwords):
        meter = FuzzyPSM.train(
            base_dictionary=passwords[:1], training=passwords
        )
        for password in passwords:
            assert 0.0 <= meter.probability(password) <= 1.0

    @given(st.lists(printable, min_size=1, max_size=15), printable)
    @settings(max_examples=50)
    def test_accept_makes_password_derivable(self, passwords, new):
        meter = FuzzyPSM.train(
            base_dictionary=passwords, training=passwords
        )
        meter.accept(new)
        assert meter.probability(new) > 0.0

    @given(st.lists(printable, min_size=1, max_size=15), printable,
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=50)
    def test_accept_monotone_in_count(self, passwords, new, count):
        meter_once = FuzzyPSM.train(
            base_dictionary=passwords, training=passwords
        )
        meter_many = FuzzyPSM.train(
            base_dictionary=passwords, training=passwords
        )
        meter_once.accept(new)
        meter_many.accept(new, count=count + 1)
        assert (
            meter_many.probability(new) >= meter_once.probability(new)
        )

    @given(st.lists(printable, min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_serialisation_round_trip(self, passwords):
        meter = FuzzyPSM.train(
            base_dictionary=passwords, training=passwords
        )
        clone = FuzzyGrammar.from_dict(meter.grammar.to_dict())
        for password in passwords:
            parsed = meter.parse(password).to_derivation()
            assert clone.derivation_probability(
                parsed
            ) == meter.grammar.derivation_probability(parsed)


class TestDerivedSegmentProperties:
    @given(lower_words)
    def test_capitalization_round_trip(self, base):
        segment = DerivedSegment(base, capitalized=True)
        surface = segment.surface()
        assert surface[:1] == base[:1].upper()
        assert surface[1:] == base[1:]

    @given(lower_words)
    def test_leet_toggles_are_involutive(self, base):
        offsets = tuple(
            i for i, ch in enumerate(base) if ch in LEET_BY_LETTER
        )
        toggled = DerivedSegment(base, False, offsets).surface()
        # Toggling every leet-able character changes exactly those
        # positions and nothing else.
        for i, (a, b) in enumerate(zip(base, toggled)):
            if i in offsets:
                assert a != b
                assert LEET_BY_LETTER[a] == b
            else:
                assert a == b

    @given(lower_words)
    def test_surface_length_preserved(self, base):
        offsets = tuple(
            i for i, ch in enumerate(base) if ch in LEET_BY_LETTER
        )
        segment = DerivedSegment(base, True, offsets)
        assert len(segment.surface()) == len(base)


class TestParserProperties:
    @given(st.lists(lower_words, min_size=1, max_size=20), printable)
    @settings(max_examples=60)
    def test_parse_reassembles_any_surface(self, words, password):
        from repro.core.parser import FuzzyParser
        trie = PrefixTrie(words)
        parser = FuzzyParser(trie)
        parse = parser.parse(password)
        assert parse.to_derivation().surface() == password

    @given(st.lists(lower_words, min_size=1, max_size=20), printable)
    @settings(max_examples=60)
    def test_structure_lengths_sum_to_password_length(self, words,
                                                      password):
        from repro.core.parser import FuzzyParser
        parser = FuzzyParser(PrefixTrie(words))
        parse = parser.parse(password)
        assert sum(parse.structure) == len(password)

    @given(lower_words)
    @settings(max_examples=60)
    def test_capitalized_word_matches_with_flag(self, word):
        from repro.core.parser import FuzzyParser
        trie = PrefixTrie([word])
        parser = FuzzyParser(trie)
        surface = word[:1].upper() + word[1:]
        parse = parser.parse(surface)
        first = parse.segments[0]
        if word[:1].isalpha():
            assert first.base == word
            assert first.capitalized

    @given(lower_words)
    @settings(max_examples=60)
    def test_leet_variant_matches_stored_word(self, word):
        from repro.core.parser import FuzzyParser
        offsets = [
            i for i, ch in enumerate(word) if ch in LEET_BY_LETTER
        ]
        if not offsets:
            return
        offset = offsets[0]
        surface = (
            word[:offset] + LEET_BY_LETTER[word[offset]]
            + word[offset + 1:]
        )
        parser = FuzzyParser(PrefixTrie([word]))
        parse = parser.parse(surface)
        first = parse.segments[0]
        # The trie word must be findable through the leet toggle; the
        # parser may prefer an equally long parse, but the surface
        # must reassemble regardless.
        assert parse.to_derivation().surface() == surface
        if first.base == word:
            assert offset in first.toggled_offsets


class TestTrieFuzzyMatchProperties:
    @given(st.lists(lower_words, min_size=1, max_size=15), lower_words)
    @settings(max_examples=60)
    def test_fuzzy_superset_of_exact(self, words, query):
        trie = PrefixTrie(words)
        exact = trie.longest_exact_prefix(query)
        fuzzy = trie.longest_fuzzy_match(query)
        if exact is not None:
            assert fuzzy is not None
            assert fuzzy.length >= len(exact)

    @given(st.lists(lower_words, min_size=1, max_size=15), lower_words)
    @settings(max_examples=60)
    def test_match_surface_is_query_prefix(self, words, query):
        trie = PrefixTrie(words)
        match = trie.longest_fuzzy_match(query)
        if match is not None:
            segment = DerivedSegment(
                match.base, match.capitalized, match.toggled_offsets
            )
            assert query.startswith(segment.surface())


class TestSamplingProperties:
    @given(st.lists(printable, min_size=3, max_size=15),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_sample_measure_consistency(self, passwords, seed):
        meter = FuzzyPSM.train(
            base_dictionary=passwords, training=passwords
        )
        rng = random.Random(seed)
        password, probability = meter.sample(rng)
        measured = meter.probability(password)
        assert abs(measured - probability) <= 1e-12 * max(
            measured, probability
        )
